package simtime

import (
	"sync"
	"time"
)

// Queue is an unbounded FIFO whose Get blocks through the owning clock.
// Put never blocks, which is what makes quiescence detection under Sim
// exact: only consumers park, and a parked consumer is genuinely waiting
// for either a producer (itself tracked) or a timer.
//
// A Queue constructed over a Sim participates in virtual time: a goroutine
// parked in Get counts as quiescent, and GetTimeout deadlines are virtual.
// Over a Real clock it behaves like an ordinary unbounded channel.
type Queue[T any] struct {
	clock Clock
	s     *Sim // non-nil when clock is a *Sim

	mu      sync.Mutex // guards the fields below in Real mode; s.mu in Sim mode
	items   []T
	waiters []*qwaiter
	closed  bool
}

// qwaiter represents one goroutine parked in Get/GetTimeout.
type qwaiter struct {
	ch       chan struct{}
	woken    bool
	timedOut bool
}

// NewQueue returns a Queue bound to c.
func NewQueue[T any](c Clock) *Queue[T] {
	q := &Queue[T]{clock: c}
	if s, ok := c.(*Sim); ok {
		q.s = s
	}
	return q
}

func (q *Queue[T]) lock() {
	if q.s != nil {
		q.s.mu.Lock()
	} else {
		q.mu.Lock()
	}
}

func (q *Queue[T]) unlock() {
	if q.s != nil {
		q.s.mu.Unlock()
	} else {
		q.mu.Unlock()
	}
}

// Put appends v and wakes one waiting consumer, if any. Put on a closed
// queue is a no-op (the item is dropped), so racing producers need not
// coordinate with Close.
func (q *Queue[T]) Put(v T) {
	q.lock()
	defer q.unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, v)
	q.wakeOneLocked(false)
}

// Get removes and returns the oldest item, blocking until one is available.
// It returns ok=false once the queue is closed and drained.
func (q *Queue[T]) Get() (T, bool) {
	return q.get(false, 0)
}

// GetTimeout is Get with a deadline d on the owning clock. On timeout it
// returns ok=false with the zero value.
func (q *Queue[T]) GetTimeout(d time.Duration) (T, bool) {
	return q.get(true, d)
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	q.lock()
	defer q.unlock()
	return q.popLocked()
}

// Len reports the number of buffered items.
func (q *Queue[T]) Len() int {
	q.lock()
	defer q.unlock()
	return len(q.items)
}

// Close wakes all waiters and makes future Gets fail once drained.
func (q *Queue[T]) Close() {
	q.lock()
	defer q.unlock()
	if q.closed {
		return
	}
	q.closed = true
	for len(q.waiters) > 0 {
		q.wakeOneLocked(false)
	}
}

func (q *Queue[T]) popLocked() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero // release for GC
	q.items = q.items[1:]
	return v, true
}

// wakeOneLocked pops the oldest waiter and marks it runnable.
func (q *Queue[T]) wakeOneLocked(timedOut bool) {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.woken {
			continue
		}
		w.woken = true
		w.timedOut = timedOut
		if q.s != nil {
			q.s.unparkLocked()
		}
		close(w.ch)
		return
	}
}

func (q *Queue[T]) get(timed bool, d time.Duration) (T, bool) {
	var zero T
	deadlineSet := false
	var deadline time.Time

	for {
		q.lock()
		if v, ok := q.popLocked(); ok {
			q.unlock()
			return v, true
		}
		if q.closed {
			q.unlock()
			return zero, false
		}
		if timed {
			// Compute the remaining budget under the lock so the
			// first pass anchors the deadline to a consistent now.
			now := q.nowLocked()
			if !deadlineSet {
				deadline = now.Add(d)
				deadlineSet = true
			}
			if !now.Before(deadline) {
				q.unlock()
				return zero, false
			}
		}

		w := &qwaiter{ch: make(chan struct{})}
		q.waiters = append(q.waiters, w)

		var cancel func() bool
		if timed {
			cancel = q.armTimeoutLocked(w, deadline)
		}

		if q.s != nil {
			// Sim: park while still holding s.mu, then release and
			// block. The park may advance time and even fire our own
			// wakeup before we reach the receive; that is fine.
			q.s.parkLocked()
			q.s.mu.Unlock()
		} else {
			q.mu.Unlock()
		}

		<-w.ch

		// The waker (Put, Close, or the timeout event) already moved us
		// back to runnable in the Sim accounting and published
		// w.timedOut before closing w.ch, so it is safe to read here.
		if cancel != nil && !w.timedOut {
			cancel()
		}
		if w.timedOut {
			return zero, false
		}
		// Woken by Put or Close: loop to claim an item (another
		// consumer may have taken it first).
	}
}

// nowLocked reads the clock's current time; callers hold the queue lock.
// In Sim mode the time is read directly from the Sim's state (its mutex
// is already held); in Real mode it routes through the owning Clock so
// the queue never touches package time itself.
func (q *Queue[T]) nowLocked() time.Time {
	if q.s != nil {
		return q.s.now
	}
	return q.clock.Now()
}

// armTimeoutLocked schedules a wakeup for w at deadline and returns a
// cancel function (callable without the lock).
func (q *Queue[T]) armTimeoutLocked(w *qwaiter, deadline time.Time) func() bool {
	if q.s != nil {
		ev := q.s.scheduleLocked(deadline.Sub(q.s.now), func() {
			// Runs with s.mu held.
			if !w.woken {
				w.woken = true
				w.timedOut = true
				q.s.unparkLocked()
				close(w.ch)
			}
		})
		return func() bool {
			q.s.mu.Lock()
			defer q.s.mu.Unlock()
			return ev.cancelLocked()
		}
	}
	t := q.clock.AfterFunc(deadline.Sub(q.clock.Now()), func() {
		q.mu.Lock()
		defer q.mu.Unlock()
		if !w.woken {
			w.woken = true
			w.timedOut = true
			close(w.ch)
		}
	})
	return t.Stop
}
