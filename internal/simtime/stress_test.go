package simtime

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestMixedPrimitiveStress runs a randomized tangle of sleepers, timers,
// queues, and spawned goroutines, checking that (a) virtual time only moves
// forward, (b) every message is delivered exactly once, and (c) the final
// time equals the furthest scheduled event that fired.
func TestMixedPrimitiveStress(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewSim(Epoch1995)
		var delivered atomic.Int64
		var sent atomic.Int64
		var monotonic atomic.Bool
		monotonic.Store(true)

		s.Run(func() {
			q := NewQueue[int](s)
			done := NewQueue[struct{}](s)
			workers := 8

			// Producers: sleep random amounts, push, occasionally spawn a
			// timer that pushes too.
			for w := 0; w < workers; w++ {
				delay := time.Duration(rng.Intn(1000)) * time.Millisecond
				count := 20 + rng.Intn(50)
				jitter := rng.Int63()
				s.Go(func() {
					r := rand.New(rand.NewSource(jitter))
					last := s.Now()
					for i := 0; i < count; i++ {
						s.Sleep(delay + time.Duration(r.Intn(100))*time.Millisecond)
						now := s.Now()
						if now.Before(last) {
							monotonic.Store(false)
						}
						last = now
						q.Put(i)
						sent.Add(1)
						if r.Intn(10) == 0 {
							sent.Add(1)
							s.AfterFunc(time.Duration(r.Intn(2000))*time.Millisecond, func() {
								q.Put(-1)
							})
						}
					}
					done.Put(struct{}{})
				})
			}

			// Consumer: drain everything with timeouts mixed in.
			s.Go(func() {
				idle := 0
				for idle < 3 {
					if _, ok := q.GetTimeout(5 * time.Second); ok {
						delivered.Add(1)
						idle = 0
					} else {
						idle++
					}
				}
				done.Put(struct{}{})
			})

			for i := 0; i < workers+1; i++ {
				done.Get()
			}
		})

		if !monotonic.Load() {
			t.Fatalf("seed %d: time moved backwards", seed)
		}
		if delivered.Load() != sent.Load() {
			t.Fatalf("seed %d: delivered %d of %d messages", seed, delivered.Load(), sent.Load())
		}
	}
}

// TestAfterFuncChains: timers that schedule timers, to a depth bounded by
// virtual time only.
func TestAfterFuncChains(t *testing.T) {
	s := NewSim(Epoch1995)
	var fired atomic.Int64
	s.Run(func() {
		done := NewQueue[struct{}](s)
		var chain func(depth int)
		chain = func(depth int) {
			fired.Add(1)
			if depth == 0 {
				done.Put(struct{}{})
				return
			}
			s.AfterFunc(time.Second, func() { chain(depth - 1) })
		}
		s.AfterFunc(time.Second, func() { chain(99) })
		done.Get()
	})
	if fired.Load() != 100 {
		t.Errorf("fired = %d, want 100", fired.Load())
	}
	if got := s.Now().Sub(Epoch1995); got != 100*time.Second {
		t.Errorf("elapsed = %v, want 100s", got)
	}
}

// TestGoFromAfterFunc: tracked goroutines spawned from timer callbacks
// participate in quiescence correctly.
func TestGoFromAfterFunc(t *testing.T) {
	s := NewSim(Epoch1995)
	var total atomic.Int64
	s.Run(func() {
		done := NewQueue[struct{}](s)
		s.AfterFunc(time.Second, func() {
			for i := 0; i < 5; i++ {
				i := i
				s.Go(func() {
					s.Sleep(time.Duration(i) * time.Second)
					total.Add(int64(i))
					done.Put(struct{}{})
				})
			}
		})
		for i := 0; i < 5; i++ {
			done.Get()
		}
	})
	if total.Load() != 10 {
		t.Errorf("total = %d, want 10", total.Load())
	}
	if got := s.Now().Sub(Epoch1995); got != 5*time.Second {
		t.Errorf("elapsed = %v, want 5s (1s timer + 4s longest sleeper)", got)
	}
}
