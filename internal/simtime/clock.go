// Package simtime provides the timing kernel for the Coda reproduction.
//
// Every component in this repository (RPC2, SFTP, the network emulator, the
// Venus daemons, the file server) blocks only through the primitives in this
// package: Clock.Sleep, Clock.AfterFunc, and Queue. This lets the identical
// protocol and daemon code run in two modes:
//
//   - Real: a thin veneer over package time; used by cmd/codasrv and
//     cmd/codaclient for live operation over UDP.
//   - Sim: a discrete-event virtual clock; used by tests, examples, and the
//     experiment harness so that a 45-minute trace replay or a 4-week
//     deployment simulation completes in milliseconds of wall time while
//     preserving all timing relationships (retransmission timers, aging
//     windows, think times, serialization delays).
//
// The Sim clock tracks a set of goroutines. Time advances only when every
// tracked goroutine is parked in a simtime primitive, at which point the
// earliest pending event fires. Parking with no pending events is reported
// as a deadlock, which turns lost-wakeup bugs into immediate test failures
// instead of hangs.
package simtime

import "time"

// Clock abstracts the passage of time. Implementations: Real and Sim.
//
// Code using a Clock must route every block through the clock: Sleep and
// AfterFunc here, or a Queue constructed against the same clock. Blocking on
// a bare channel while running under a Sim clock stalls virtual time.
type Clock interface {
	// Now reports the current (real or virtual) time.
	Now() time.Time
	// Sleep pauses the calling goroutine for d. Non-positive d still
	// yields to other goroutines runnable at the current instant.
	Sleep(d time.Duration)
	// AfterFunc arranges for fn to run in its own goroutine once d has
	// elapsed. The returned Timer can stop or reschedule the call.
	AfterFunc(d time.Duration, fn func()) *Timer
	// Go starts fn in a new goroutine tracked by the clock. Under Sim,
	// untracked goroutines (plain go statements) are invisible to the
	// quiescence detector and must not block on simtime primitives.
	Go(fn func())
}

// Timer is a handle to a pending AfterFunc call, usable under both clocks.
type Timer struct {
	stop  func() bool
	reset func(time.Duration) bool
}

// Stop cancels the timer. It reports whether the call was still pending.
func (t *Timer) Stop() bool { return t.stop() }

// Reset reschedules the timer to fire after d. It reports whether the call
// was still pending at the time of the reset.
func (t *Timer) Reset(d time.Duration) bool { return t.reset(d) }

// Real is the production clock: package time plus plain goroutines.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, fn func()) *Timer {
	t := time.AfterFunc(d, fn)
	return &Timer{stop: t.Stop, reset: func(d time.Duration) bool { return t.Reset(d) }}
}

// Go implements Clock.
func (Real) Go(fn func()) { go fn() }
