package simtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSimSleepAdvancesVirtualTime(t *testing.T) {
	s := NewSim(Epoch1995)
	start := time.Now()
	s.Run(func() {
		s.Sleep(45 * time.Minute)
	})
	if got := s.Now().Sub(Epoch1995); got != 45*time.Minute {
		t.Errorf("virtual elapsed = %v, want 45m", got)
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Errorf("wall elapsed = %v; virtual sleep should be near-instant", wall)
	}
}

func TestSimSleepZeroAndNegative(t *testing.T) {
	s := NewSim(Epoch1995)
	s.Run(func() {
		s.Sleep(0)
		s.Sleep(-time.Second)
	})
	if !s.Now().Equal(Epoch1995) {
		t.Errorf("time moved on zero/negative sleep: %v", s.Now())
	}
}

func TestSimSleepersWakeInOrder(t *testing.T) {
	s := NewSim(Epoch1995)
	var mu sync.Mutex
	var order []int
	s.Run(func() {
		done := NewQueue[struct{}](s)
		delays := []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
		for i, d := range delays {
			i, d := i, d
			s.Go(func() {
				s.Sleep(d)
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
				done.Put(struct{}{})
			})
		}
		for range delays {
			done.Get()
		}
	})
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestSimEqualDeadlinesFireFIFO(t *testing.T) {
	s := NewSim(Epoch1995)
	var mu sync.Mutex
	var order []int
	s.Run(func() {
		done := NewQueue[struct{}](s)
		for i := 0; i < 10; i++ {
			i := i
			s.AfterFunc(time.Second, func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
				done.Put(struct{}{})
			})
		}
		for i := 0; i < 10; i++ {
			done.Get()
		}
	})
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("equal-deadline order = %v, want ascending", order)
		}
	}
}

func TestSimAfterFuncFiresAtDeadline(t *testing.T) {
	s := NewSim(Epoch1995)
	var firedAt time.Time
	s.Run(func() {
		done := NewQueue[struct{}](s)
		s.AfterFunc(90*time.Second, func() {
			firedAt = s.Now()
			done.Put(struct{}{})
		})
		done.Get()
	})
	if got := firedAt.Sub(Epoch1995); got != 90*time.Second {
		t.Errorf("fired at +%v, want +90s", got)
	}
}

func TestSimTimerStop(t *testing.T) {
	s := NewSim(Epoch1995)
	var fired atomic.Bool
	s.Run(func() {
		tm := s.AfterFunc(time.Second, func() { fired.Store(true) })
		if !tm.Stop() {
			t.Error("Stop reported timer already inactive")
		}
		if tm.Stop() {
			t.Error("second Stop reported timer active")
		}
		s.Sleep(5 * time.Second)
	})
	if fired.Load() {
		t.Error("stopped timer fired")
	}
}

func TestSimTimerReset(t *testing.T) {
	s := NewSim(Epoch1995)
	var firedAt time.Time
	s.Run(func() {
		done := NewQueue[struct{}](s)
		tm := s.AfterFunc(time.Second, func() {
			firedAt = s.Now()
			done.Put(struct{}{})
		})
		if !tm.Reset(10 * time.Second) {
			t.Error("Reset reported timer inactive")
		}
		done.Get()
	})
	if got := firedAt.Sub(Epoch1995); got != 10*time.Second {
		t.Errorf("reset timer fired at +%v, want +10s", got)
	}
}

func TestSimTimerResetAfterFire(t *testing.T) {
	s := NewSim(Epoch1995)
	var fires atomic.Int32
	s.Run(func() {
		done := NewQueue[struct{}](s)
		tm := s.AfterFunc(time.Second, func() {
			fires.Add(1)
			done.Put(struct{}{})
		})
		done.Get()
		if tm.Reset(time.Second) {
			t.Error("Reset after fire reported timer still active")
		}
		done.Get()
	})
	if fires.Load() != 2 {
		t.Errorf("fires = %d, want 2", fires.Load())
	}
}

func TestSimDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected deadlock panic")
		}
	}()
	s := NewSim(Epoch1995)
	s.Run(func() {
		q := NewQueue[int](s)
		q.Get() // nothing will ever Put
	})
}

func TestSimNestedRunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected nested-Run panic")
		}
	}()
	s := NewSim(Epoch1995)
	s.Run(func() { s.Run(func() {}) })
}

func TestSimSequentialRunsContinueTime(t *testing.T) {
	s := NewSim(Epoch1995)
	s.Run(func() { s.Sleep(time.Hour) })
	s.Run(func() { s.Sleep(time.Hour) })
	if got := s.Now().Sub(Epoch1995); got != 2*time.Hour {
		t.Errorf("elapsed = %v, want 2h", got)
	}
}

func TestSimProducerConsumer(t *testing.T) {
	s := NewSim(Epoch1995)
	const n = 1000
	var sum int64
	s.Run(func() {
		q := NewQueue[int](s)
		done := NewQueue[struct{}](s)
		s.Go(func() {
			for i := 1; i <= n; i++ {
				s.Sleep(time.Millisecond)
				q.Put(i)
			}
			q.Close()
		})
		s.Go(func() {
			for {
				v, ok := q.Get()
				if !ok {
					break
				}
				atomic.AddInt64(&sum, int64(v))
			}
			done.Put(struct{}{})
		})
		done.Get()
	})
	if sum != n*(n+1)/2 {
		t.Errorf("sum = %d, want %d", sum, n*(n+1)/2)
	}
	if got := s.Now().Sub(Epoch1995); got != n*time.Millisecond {
		t.Errorf("elapsed = %v, want %v", got, n*time.Millisecond)
	}
}

func TestQueueFIFO(t *testing.T) {
	s := NewSim(Epoch1995)
	s.Run(func() {
		q := NewQueue[int](s)
		for i := 0; i < 100; i++ {
			q.Put(i)
		}
		for i := 0; i < 100; i++ {
			v, ok := q.Get()
			if !ok || v != i {
				t.Fatalf("Get #%d = %d,%v", i, v, ok)
			}
		}
	})
}

func TestQueueGetTimeoutExpires(t *testing.T) {
	s := NewSim(Epoch1995)
	s.Run(func() {
		q := NewQueue[int](s)
		before := s.Now()
		_, ok := q.GetTimeout(250 * time.Millisecond)
		if ok {
			t.Error("GetTimeout returned ok on empty queue")
		}
		if got := s.Now().Sub(before); got != 250*time.Millisecond {
			t.Errorf("timeout consumed %v of virtual time, want 250ms", got)
		}
	})
}

func TestQueueGetTimeoutDelivery(t *testing.T) {
	s := NewSim(Epoch1995)
	s.Run(func() {
		q := NewQueue[int](s)
		s.AfterFunc(100*time.Millisecond, func() { q.Put(7) })
		v, ok := q.GetTimeout(time.Second)
		if !ok || v != 7 {
			t.Fatalf("GetTimeout = %d,%v; want 7,true", v, ok)
		}
		// The pending timeout event must have been cancelled: sleeping
		// past the old deadline must not disturb anything.
		s.Sleep(2 * time.Second)
	})
}

func TestQueueCloseWakesWaiters(t *testing.T) {
	s := NewSim(Epoch1995)
	s.Run(func() {
		q := NewQueue[int](s)
		done := NewQueue[bool](s)
		for i := 0; i < 3; i++ {
			s.Go(func() {
				_, ok := q.Get()
				done.Put(ok)
			})
		}
		s.AfterFunc(time.Second, func() { q.Close() })
		for i := 0; i < 3; i++ {
			if ok, _ := done.Get(); ok {
				t.Error("Get on closed queue returned ok")
			}
		}
	})
}

func TestQueueCloseDrainsBufferedItems(t *testing.T) {
	s := NewSim(Epoch1995)
	s.Run(func() {
		q := NewQueue[int](s)
		q.Put(1)
		q.Put(2)
		q.Close()
		if v, ok := q.Get(); !ok || v != 1 {
			t.Fatalf("first Get after close = %d,%v", v, ok)
		}
		if v, ok := q.Get(); !ok || v != 2 {
			t.Fatalf("second Get after close = %d,%v", v, ok)
		}
		if _, ok := q.Get(); ok {
			t.Fatal("Get past drained closed queue returned ok")
		}
	})
}

func TestQueuePutAfterCloseDropped(t *testing.T) {
	s := NewSim(Epoch1995)
	s.Run(func() {
		q := NewQueue[int](s)
		q.Close()
		q.Put(5)
		if q.Len() != 0 {
			t.Error("Put after Close retained item")
		}
	})
}

func TestQueueTryGet(t *testing.T) {
	s := NewSim(Epoch1995)
	s.Run(func() {
		q := NewQueue[string](s)
		if _, ok := q.TryGet(); ok {
			t.Error("TryGet on empty queue returned ok")
		}
		q.Put("x")
		if v, ok := q.TryGet(); !ok || v != "x" {
			t.Errorf("TryGet = %q,%v", v, ok)
		}
	})
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	start := c.Now()
	c.Sleep(10 * time.Millisecond)
	if c.Now().Sub(start) < 10*time.Millisecond {
		t.Error("Real.Sleep returned early")
	}

	q := NewQueue[int](c)
	done := make(chan struct{})
	c.Go(func() {
		q.Put(42)
		close(done)
	})
	<-done
	if v, ok := q.Get(); !ok || v != 42 {
		t.Errorf("real-clock queue Get = %d,%v", v, ok)
	}

	fired := make(chan struct{})
	c.AfterFunc(5*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Error("Real.AfterFunc never fired")
	}
}

func TestRealQueueGetTimeout(t *testing.T) {
	q := NewQueue[int](Real{})
	start := time.Now()
	if _, ok := q.GetTimeout(20 * time.Millisecond); ok {
		t.Error("GetTimeout on empty real queue returned ok")
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("real GetTimeout returned early")
	}
	go func() {
		//codalint:ignore testhygiene exercising the Real clock needs a genuine wall-clock delay
		time.Sleep(5 * time.Millisecond)
		q.Put(9)
	}()
	if v, ok := q.GetTimeout(2 * time.Second); !ok || v != 9 {
		t.Errorf("GetTimeout = %d,%v", v, ok)
	}
}

// Property: for any set of sleep durations, all sleepers complete, the clock
// ends at the max duration, and each sleeper observes its own wake time.
func TestSimSleepProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 50 {
			raw = raw[:50]
		}
		s := NewSim(Epoch1995)
		okAll := true
		var maxD time.Duration
		s.Run(func() {
			done := NewQueue[struct{}](s)
			for _, r := range raw {
				d := time.Duration(r) * time.Millisecond
				if d > maxD {
					maxD = d
				}
				s.Go(func() {
					s.Sleep(d)
					if s.Now().Sub(Epoch1995) != d {
						okAll = false
					}
					done.Put(struct{}{})
				})
			}
			for range raw {
				done.Get()
			}
		})
		return okAll && s.Now().Sub(Epoch1995) == maxD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a queue delivers exactly the multiset of items put, in FIFO
// order for a single consumer.
func TestQueueDeliveryProperty(t *testing.T) {
	f := func(items []int) bool {
		s := NewSim(Epoch1995)
		ok := true
		s.Run(func() {
			q := NewQueue[int](s)
			s.Go(func() {
				for _, v := range items {
					q.Put(v)
				}
				q.Close()
			})
			i := 0
			for {
				v, alive := q.Get()
				if !alive {
					break
				}
				if i >= len(items) || v != items[i] {
					ok = false
				}
				i++
			}
			if i != len(items) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
