package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// linkProfiles names the netsim profiles a scenario may refer to.
var linkProfiles = map[string]bool{
	"ethernet": true,
	"wavelan":  true,
	"isdn":     true,
	"modem":    true,
}

// clientStates names the Venus states an assert state may expect.
var clientStates = map[string]bool{
	"hoarding":           true,
	"emulating":          true,
	"write-disconnected": true,
}

// traceVolume is the volume every generated trace lives in (the trace
// generator's default).
const traceVolume = "usr"

// Validate statically checks a scenario: every reference resolves, the
// topology is well-formed, and — unless the scenario is a template —
// no unexpanded ${var} remains. Templates get their axes checked here
// and full validation per instance after expansion.
func Validate(s *Scenario) error {
	if s.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if s.IsTemplate() {
		seen := map[string]bool{}
		for _, ax := range s.Axes {
			if ax.Name == "" || strings.ContainsAny(ax.Name, "${} \t") {
				return fmt.Errorf("scenario %s: bad axis name %q", s.Name, ax.Name)
			}
			if seen[ax.Name] {
				return fmt.Errorf("scenario %s: duplicate axis %q", s.Name, ax.Name)
			}
			seen[ax.Name] = true
		}
		return nil
	}
	if v := firstUnexpanded(s); v != "" {
		return fmt.Errorf("scenario %s: unexpanded variable %s (expand the template with the matrix command first)", s.Name, v)
	}

	t, err := resolveTopology(s)
	if err != nil {
		return err
	}
	for i := range s.Mounts {
		m := &s.Mounts[i]
		if _, ok := t.clients[m.Client]; !ok {
			return declErr(s, m.Line, "mount", fmt.Errorf("unknown client %q", m.Client))
		}
		if _, ok := t.volumes[m.Volume]; !ok {
			return declErr(s, m.Line, "mount", fmt.Errorf("unknown volume %q", m.Volume))
		}
	}
	for i := range s.Steps {
		if err := validateStep(s, t, &s.Steps[i]); err != nil {
			return err
		}
	}
	for i := range s.Asserts {
		if err := validateAssert(s, t, &s.Asserts[i]); err != nil {
			return err
		}
	}
	return nil
}

// topology indexes a scenario's declarations for reference resolution.
type topology struct {
	groups     map[string]*GroupDecl
	groupOrder []string
	volumes    map[string]string // volume → carrying group
	traces     map[string]*TraceDecl
	clients    map[string]*ClientDecl
}

// resolveTopology builds the index, checking uniqueness and that every
// declaration's own references resolve.
func resolveTopology(s *Scenario) (*topology, error) {
	t := &topology{
		groups:  map[string]*GroupDecl{},
		volumes: map[string]string{},
		traces:  map[string]*TraceDecl{},
		clients: map[string]*ClientDecl{},
	}
	if len(s.Groups) == 0 {
		return nil, fmt.Errorf("scenario %s: no group declared", s.Name)
	}
	for i := range s.Groups {
		g := &s.Groups[i]
		if g.Members < 1 || g.Members > 16 {
			return nil, declErr(s, g.Line, "group", fmt.Errorf("member count %d out of range [1, 16]", g.Members))
		}
		if _, dup := t.groups[g.Name]; dup {
			return nil, declErr(s, g.Line, "group", fmt.Errorf("duplicate group %q", g.Name))
		}
		t.groups[g.Name] = g
		t.groupOrder = append(t.groupOrder, g.Name)
	}
	defaultGroup := t.groupOrder[0]
	for i := range s.Volumes {
		v := &s.Volumes[i]
		if v.Group == "" {
			v.Group = defaultGroup
		}
		if _, ok := t.groups[v.Group]; !ok {
			return nil, declErr(s, v.Line, "volume", fmt.Errorf("unknown group %q", v.Group))
		}
		if _, dup := t.volumes[v.Name]; dup {
			return nil, declErr(s, v.Line, "volume", fmt.Errorf("duplicate volume %q", v.Name))
		}
		t.volumes[v.Name] = v.Group
	}
	for i := range s.Traces {
		tr := &s.Traces[i]
		if !validSegment(tr.Segment) {
			return nil, declErr(s, tr.Line, "trace", fmt.Errorf("unknown segment %q (want one of %s)",
				tr.Segment, strings.Join(trace.SegmentNames, ", ")))
		}
		if tr.ScalePct < 0 || tr.ScalePct > 400 {
			return nil, declErr(s, tr.Line, "trace", fmt.Errorf("scale %d%% out of range [0, 400]", tr.ScalePct))
		}
		if _, dup := t.traces[tr.Name]; dup {
			return nil, declErr(s, tr.Line, "trace", fmt.Errorf("duplicate trace %q", tr.Name))
		}
		if i == 0 {
			if _, dup := t.volumes[traceVolume]; dup {
				return nil, declErr(s, tr.Line, "trace", fmt.Errorf("trace volume %q collides with a declared volume", traceVolume))
			}
		}
		t.traces[tr.Name] = tr
	}
	if len(s.Traces) > 0 {
		// All traces share the generator's volume; it lives on the default
		// group and is mountable like a declared volume.
		if _, ok := t.volumes[traceVolume]; !ok {
			t.volumes[traceVolume] = defaultGroup
		}
	}
	for i := range s.Seeds {
		d := &s.Seeds[i]
		if _, ok := t.volumes[d.Volume]; !ok {
			return nil, declErr(s, d.Line, "seed-file", fmt.Errorf("unknown volume %q", d.Volume))
		}
	}
	ids := map[uint32]string{}
	for i := range s.Clients {
		c := &s.Clients[i]
		if c.Group == "" {
			c.Group = defaultGroup
		}
		if _, ok := t.groups[c.Group]; !ok {
			return nil, declErr(s, c.Line, "client", fmt.Errorf("unknown group %q", c.Group))
		}
		if _, dup := t.clients[c.Name]; dup {
			return nil, declErr(s, c.Line, "client", fmt.Errorf("duplicate client %q", c.Name))
		}
		if other, dup := ids[c.ID]; dup {
			return nil, declErr(s, c.Line, "client", fmt.Errorf("id %d already used by client %q", c.ID, other))
		}
		for _, g := range t.groupOrder {
			if c.Name == g {
				return nil, declErr(s, c.Line, "client", fmt.Errorf("client name %q collides with a group", c.Name))
			}
		}
		ids[c.ID] = c.Name
		t.clients[c.Name] = c
	}
	return t, nil
}

// resolveTarget resolves a step/assert target to a group, or to one
// member of a group when the name is <group><index>.
func (t *topology) resolveTarget(name string) (group string, member int, isGroup bool, err error) {
	if _, ok := t.groups[name]; ok {
		return name, -1, true, nil
	}
	for _, g := range t.groupOrder {
		decl := t.groups[g]
		if !strings.HasPrefix(name, g) {
			continue
		}
		idx, convErr := strconv.Atoi(name[len(g):])
		if convErr != nil {
			continue
		}
		if idx < 0 || idx >= decl.Members {
			return "", 0, false, fmt.Errorf("server %q: group %q has %d members", name, g, decl.Members)
		}
		return g, idx, false, nil
	}
	return "", 0, false, fmt.Errorf("unknown server or group %q", name)
}

// validateStep checks one schedule step's references.
func validateStep(s *Scenario, t *topology, st *Step) error {
	fail := func(err error) error { return declErr(s, st.Line, string(st.Kind), err) }
	if st.Client != "" {
		if _, ok := t.clients[st.Client]; !ok {
			return fail(fmt.Errorf("unknown client %q", st.Client))
		}
	}
	switch st.Kind {
	case StepLink, StepFlap:
		if _, _, _, err := t.resolveTarget(st.Target); err != nil {
			return fail(err)
		}
		if st.Kind == StepLink && st.Mode == LinkProfile && !linkProfiles[st.Profile] {
			return fail(fmt.Errorf("unknown profile %q (want ethernet, wavelan, isdn, modem)", st.Profile))
		}
	case StepKill, StepCrashArm, StepRestart:
		g, _, isGroup, err := t.resolveTarget(st.Target)
		if err != nil {
			return fail(err)
		}
		if isGroup {
			return fail(fmt.Errorf("%s needs a single server, not group %q", st.Kind, st.Target))
		}
		if (st.Kind == StepCrashArm || st.Kind == StepRestart) && !t.groups[g].Journal {
			return fail(fmt.Errorf("%s requires group %q to be declared with journal", st.Kind, g))
		}
		if st.Kind == StepRestart {
			// Administrative seed writes (seed-file, seed-dir, trace
			// universes) bypass the replicated log and the journal, so a
			// member rebooted from its journal cannot reconstruct them.
			// Content for crash/restart scenarios must flow through a
			// client, like the repo's crash tests.
			for i := range s.Seeds {
				if t.volumes[s.Seeds[i].Volume] == g {
					return fail(fmt.Errorf("group %q carries seeded content, which is not journaled; seed via a client instead", g))
				}
			}
			if len(s.Traces) > 0 && t.volumes[traceVolume] == g {
				return fail(fmt.Errorf("group %q carries a trace universe, which is not journaled; restart is unsupported there", g))
			}
		}
		if st.From != "" {
			if _, _, fromGroup, err := t.resolveTarget(st.From); err != nil || fromGroup {
				return fail(fmt.Errorf("restart from: %q must name a single server", st.From))
			}
		}
	case StepConverge:
		if _, _, isGroup, err := t.resolveTarget(st.Target); err != nil || !isGroup {
			return fail(fmt.Errorf("converge needs a group, got %q", st.Target))
		}
	case StepReplay:
		if _, ok := t.traces[st.Target]; !ok {
			return fail(fmt.Errorf("unknown trace %q", st.Target))
		}
	}
	return nil
}

// validateAssert checks one assertion's references.
func validateAssert(s *Scenario, t *topology, a *Assert) error {
	fail := func(err error) error { return declErr(s, a.Line, "assert "+string(a.Kind), err) }
	if a.Client != "" {
		if _, ok := t.clients[a.Client]; !ok {
			return fail(fmt.Errorf("unknown client %q", a.Client))
		}
	}
	switch a.Kind {
	case AssertIdentical, AssertStamp:
		if _, _, isGroup, err := t.resolveTarget(a.Target); err != nil || !isGroup {
			return fail(fmt.Errorf("needs a group, got %q", a.Target))
		}
	case AssertFile:
		if _, _, _, err := t.resolveTarget(a.Target); err != nil {
			return fail(err)
		}
	case AssertState:
		if !clientStates[a.State] {
			return fail(fmt.Errorf("unknown state %q (want hoarding, emulating, write-disconnected)", a.State))
		}
	}
	if a.Volume != "" {
		if _, ok := t.volumes[a.Volume]; !ok {
			return fail(fmt.Errorf("unknown volume %q", a.Volume))
		}
	}
	return nil
}

// validSegment reports whether name is one of the trace generator's
// calibrated segments.
func validSegment(name string) bool {
	for _, s := range trace.SegmentNames {
		if s == name {
			return true
		}
	}
	return false
}

// firstUnexpanded returns the first ${var} reference left in a
// non-template scenario, or "".
func firstUnexpanded(s *Scenario) string {
	check := func(fields ...string) string {
		for _, f := range fields {
			if i := strings.Index(f, "${"); i >= 0 {
				if j := strings.Index(f[i:], "}"); j >= 0 {
					return f[i : i+j+1]
				}
				return f[i:]
			}
		}
		return ""
	}
	if v := check(s.Name); v != "" {
		return v
	}
	for _, g := range s.Groups {
		if v := check(g.Name); v != "" {
			return v
		}
	}
	for _, d := range s.Volumes {
		if v := check(d.Name, d.Group); v != "" {
			return v
		}
	}
	for _, d := range s.Seeds {
		if v := check(d.Volume, d.Path, string(d.Data)); v != "" {
			return v
		}
	}
	for _, d := range s.Traces {
		if v := check(d.Name, d.Segment); v != "" {
			return v
		}
	}
	for _, c := range s.Clients {
		if v := check(c.Name, c.Group); v != "" {
			return v
		}
	}
	for _, m := range s.Mounts {
		if v := check(m.Client, m.Volume); v != "" {
			return v
		}
	}
	for _, st := range s.Steps {
		if v := check(st.Client, st.Target, st.Path, string(st.Data), st.Profile, st.From); v != "" {
			return v
		}
	}
	for _, a := range s.Asserts {
		if v := check(a.Client, a.Target, a.Volume, a.Path, string(a.Data), a.Metric, a.State); v != "" {
			return v
		}
	}
	return ""
}

// declErr attributes a validation error to its source line.
func declErr(s *Scenario, line int, what string, err error) error {
	return fmt.Errorf("scenario %s:%d: %s: %w", s.Name, line, what, err)
}
