package scenario

import (
	"encoding/json"
	"fmt"
)

// Result is the outcome of one scenario run. Every field derives from
// the virtual clock and the scenario seed, so identical scenarios
// produce byte-identical DumpJSON output — the determinism contract the
// golden tests pin.
type Result struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Steps    int    `json:"steps"`

	// ElapsedSimUS is schedule wall time on the virtual clock, in
	// microseconds.
	ElapsedSimUS int64 `json:"elapsed_sim_us"`

	// StepFailure is set when a schedule step failed; assertions are
	// skipped in that case.
	StepFailure string `json:"step_failure,omitempty"`

	Asserts []AssertResult `json:"asserts"`

	// Metrics is the obs registry dump captured at schedule end, before
	// assertions read any state.
	Metrics json.RawMessage `json:"metrics"`

	// Trace is the Perfetto (Chrome trace-event) export of every span the
	// run recorded, captured alongside Metrics. It is excluded from
	// DumpJSON — the golden files pin it separately — and surfaced by the
	// codascn/codabench -trace flags.
	Trace []byte `json:"-"`
}

// AssertResult is one evaluated assertion.
type AssertResult struct {
	Line   int    `json:"line"`
	Kind   string `json:"kind"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// OK reports whether the run passed: no step failure and every
// assertion held.
func (r *Result) OK() bool {
	if r.StepFailure != "" {
		return false
	}
	for _, a := range r.Asserts {
		if !a.OK {
			return false
		}
	}
	return true
}

// Failures lists what went wrong, one line each.
func (r *Result) Failures() []string {
	var out []string
	if r.StepFailure != "" {
		out = append(out, "step: "+r.StepFailure)
	}
	for _, a := range r.Asserts {
		if !a.OK {
			out = append(out, fmt.Sprintf("assert %s (line %d): %s", a.Kind, a.Line, a.Detail))
		}
	}
	return out
}

// DumpJSON renders the result deterministically: two-space indent,
// trailing newline, matching the obs dump convention.
func (r *Result) DumpJSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// Result contains only marshalable fields.
		panic("scenario: result marshal: " + err.Error())
	}
	return append(b, '\n')
}
