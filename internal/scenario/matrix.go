package scenario

import (
	"fmt"
	"strings"
)

// Instance is one concrete scenario generated from a template.
type Instance struct {
	// Name is the template name suffixed with this cell's axis values,
	// e.g. crash_catchup_matrix_crash-3_churn-flappy.
	Name string
	// Vars are the axis bindings that produced this instance, in axis
	// declaration order.
	Vars [][2]string
	// Src is the expanded scenario source, runnable as its own file.
	Src []byte
	// Scenario is the parsed and validated instance.
	Scenario *Scenario
}

// maxInstances bounds a single expansion; a sweep bigger than this is a
// template bug, not a chaos matrix.
const maxInstances = 4096

// ExpandMatrix expands a template into the cross product of its axes,
// in declaration order (the last axis varies fastest). Each instance is
// the template source with every ${axis} replaced by that cell's value,
// matrix directives dropped, and the scenario name suffixed with the
// cell's bindings; instances are parsed and validated before being
// returned, so a template whose cells don't all survive validation is
// rejected as a whole.
func ExpandMatrix(name string, src []byte) ([]Instance, error) {
	tmpl, err := Parse(name, src)
	if err != nil {
		return nil, err
	}
	if err := Validate(tmpl); err != nil {
		return nil, err
	}
	if !tmpl.IsTemplate() {
		return nil, fmt.Errorf("scenario %s: no matrix axes; nothing to expand", tmpl.Name)
	}
	total := 1
	for _, ax := range tmpl.Axes {
		if total > maxInstances/len(ax.Values) {
			return nil, fmt.Errorf("scenario %s: matrix exceeds %d instances", tmpl.Name, maxInstances)
		}
		total *= len(ax.Values)
	}

	var out []Instance
	idx := make([]int, len(tmpl.Axes))
	for cell := 0; cell < total; cell++ {
		inst, err := expandCell(tmpl, src, idx)
		if err != nil {
			return nil, err
		}
		out = append(out, inst)
		for d := len(idx) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < len(tmpl.Axes[d].Values) {
				break
			}
			idx[d] = 0
		}
	}
	return out, nil
}

// expandCell renders and validates the instance at one axis index
// vector.
func expandCell(tmpl *Scenario, src []byte, idx []int) (Instance, error) {
	inst := Instance{Name: tmpl.Name}
	for d, ax := range tmpl.Axes {
		val := ax.Values[idx[d]]
		inst.Vars = append(inst.Vars, [2]string{ax.Name, val})
		inst.Name += "_" + ax.Name + "-" + sanitize(val)
	}
	inst.Src = renderInstance(src, inst.Name, inst.Vars)
	s, err := Parse(inst.Name, inst.Src)
	if err != nil {
		return inst, fmt.Errorf("matrix cell %s: %w", inst.Name, err)
	}
	if err := Validate(s); err != nil {
		return inst, fmt.Errorf("matrix cell %s: %w", inst.Name, err)
	}
	inst.Scenario = s
	return inst, nil
}

// renderInstance rewrites template source into one instance: matrix
// directives are dropped, the scenario directive is renamed, and axis
// variables are substituted textually (quoted strings included — file
// content may vary by cell).
func renderInstance(src []byte, name string, vars [][2]string) []byte {
	var b strings.Builder
	for _, line := range strings.Split(string(src), "\n") {
		first := firstWord(line)
		switch first {
		case "matrix":
			continue
		case "scenario":
			b.WriteString("scenario " + name + "\n")
			continue
		}
		for _, kv := range vars {
			line = strings.ReplaceAll(line, "${"+kv[0]+"}", kv[1])
		}
		b.WriteString(line + "\n")
	}
	out := b.String()
	// A template without a scenario directive still needs its instances
	// named uniquely.
	if !hasScenarioDirective(out) {
		out = "scenario " + name + "\n" + out
	}
	return []byte(strings.TrimSuffix(out, "\n") + "\n")
}

// firstWord returns the first whitespace-delimited word of a line, ""
// for blank or comment lines.
func firstWord(line string) string {
	line = strings.TrimLeft(line, " \t")
	if line == "" || line[0] == '#' {
		return ""
	}
	end := strings.IndexAny(line, " \t#")
	if end < 0 {
		return line
	}
	return line[:end]
}

// hasScenarioDirective reports whether any line starts with the
// scenario keyword.
func hasScenarioDirective(src string) bool {
	for _, line := range strings.Split(src, "\n") {
		if firstWord(line) == "scenario" {
			return true
		}
	}
	return false
}

// sanitize maps an axis value onto name-safe characters.
func sanitize(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteRune('-')
		}
	}
	return b.String()
}
