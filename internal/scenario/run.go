package scenario

import (
	"bytes"
	"fmt"
	"strconv"
	"time"

	"repro/internal/crashfs"
	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/venus"
	"repro/internal/wal"
)

// profileByName maps scenario profile names onto netsim's calibrated
// network technologies.
var profileByName = map[string]netsim.Profile{
	"ethernet": netsim.Ethernet,
	"wavelan":  netsim.WaveLan,
	"isdn":     netsim.ISDN,
	"modem":    netsim.Modem,
}

// Run validates s, compiles it onto the sim substrate, executes the
// schedule, and evaluates the assertions. The returned error covers
// problems with the scenario itself (validation, world construction);
// step and assertion failures are reported in the Result, whose OK
// method is the pass/fail verdict. Identical scenarios produce
// byte-identical Result dumps: everything in the run — network timing,
// journal fault points, trace workloads — derives from the scenario
// seed on a virtual clock.
func Run(s *Scenario) (*Result, error) {
	if err := Validate(s); err != nil {
		return nil, err
	}
	if s.IsTemplate() {
		return nil, fmt.Errorf("scenario %s: is a template; expand it with the matrix command first", s.Name)
	}
	topo, err := resolveTopology(s)
	if err != nil {
		return nil, err
	}
	w, err := buildWorld(s, topo)
	if err != nil {
		return nil, err
	}

	res := &Result{Scenario: s.Name, Seed: s.Seed, Steps: len(s.Steps)}
	w.sim.Run(func() {
		w.startClients()
		if err := w.mountAll(); err != nil {
			res.StepFailure = err.Error()
			return
		}
		start := w.sim.Now()
		w.scheduleStart = start
		for i := range s.Steps {
			if err := w.execStep(&s.Steps[i]); err != nil {
				res.StepFailure = fmt.Sprintf("%s:%d: %s: %v", s.Name, s.Steps[i].Line, s.Steps[i].Kind, err)
				break
			}
		}
		res.ElapsedSimUS = w.sim.Now().Sub(start).Microseconds()
		// The dump is captured before assertions run so assertion-time
		// reads (client-file fetches bump cache counters) cannot perturb
		// it; metric assertions read this same snapshot.
		res.Metrics = w.reg.Dump()
		res.Trace = w.reg.ExportTrace()
		for i := range s.Asserts {
			res.Asserts = append(res.Asserts, w.evalAssert(&s.Asserts[i], res))
		}
	})
	return res, nil
}

// world is one compiled scenario: the simulated deployment plus the
// handles steps and assertions act on.
type world struct {
	scn  *Scenario
	topo *topology

	sim *simtime.Sim
	net *netsim.Network
	reg *obs.Registry

	groups map[string]*group.Group
	mems   map[string][]*crashfs.Mem // journal disks, per journaled group
	alive  map[string]bool           // server liveness (kill/restart)

	clients map[string]*venus.Venus
	traces  map[string]*trace.Trace

	scheduleStart time.Time
}

// journalOpts is the WAL configuration every journaled member uses: one
// fsync per record on the fault-injectable disk, the strictest policy —
// what crash-arm sweeps cut power under.
func journalOpts(mem *crashfs.Mem) server.JournalOptions {
	return server.JournalOptions{FS: mem, Dir: "sj", Policy: wal.SyncEachRecord}
}

// buildWorld constructs the deployment: network, groups (journaled where
// declared), volumes, seeds, and trace universes. Clients are started
// later, inside the sim run.
func buildWorld(s *Scenario, topo *topology) (*world, error) {
	w := &world{
		scn:     s,
		topo:    topo,
		groups:  map[string]*group.Group{},
		mems:    map[string][]*crashfs.Mem{},
		alive:   map[string]bool{},
		clients: map[string]*venus.Venus{},
		traces:  map[string]*trace.Trace{},
	}
	w.sim = simtime.NewSim(simtime.Epoch1995)
	w.net = netsim.New(w.sim, s.Seed)
	w.net.SetDefaults(netsim.Ethernet.Params())
	w.reg = obs.NewRegistry(w.sim)

	for gi := range s.Groups {
		gd := &s.Groups[gi]
		conns := make([]netsim.PacketConn, gd.Members)
		for i := range conns {
			conns[i] = w.net.Host(serverName(gd.Name, i))
		}
		grp, err := group.New(w.sim, conns, group.WithObs(w.reg))
		if err != nil {
			return nil, fmt.Errorf("scenario %s: group %s: %w", s.Name, gd.Name, err)
		}
		w.groups[gd.Name] = grp
		for i := 0; i < gd.Members; i++ {
			w.alive[serverName(gd.Name, i)] = true
		}
		if gd.Journal {
			mems := make([]*crashfs.Mem, gd.Members)
			for i := range mems {
				mems[i] = crashfs.NewMem()
				if _, err := grp.Member(i).AttachJournal(journalOpts(mems[i])); err != nil {
					return nil, fmt.Errorf("scenario %s: group %s member %d journal: %w", s.Name, gd.Name, i, err)
				}
			}
			w.mems[gd.Name] = mems
		}
	}
	for i := range s.Volumes {
		vd := &s.Volumes[i]
		if _, err := w.groups[vd.Group].CreateVolume(vd.Name); err != nil {
			return nil, fmt.Errorf("scenario %s: volume %s: %w", s.Name, vd.Name, err)
		}
	}
	for i := range s.Seeds {
		sd := &s.Seeds[i]
		grp := w.groups[topo.volumes[sd.Volume]]
		var err error
		if sd.Dir {
			err = grp.MakeDir(sd.Volume, sd.Path)
		} else {
			err = grp.WriteFile(sd.Volume, sd.Path, sd.Data)
		}
		if err != nil {
			return nil, fmt.Errorf("scenario %s: seed %s/%s: %w", s.Name, sd.Volume, sd.Path, err)
		}
	}
	for i := range s.Traces {
		td := &s.Traces[i]
		p := trace.SegmentPreset(td.Segment, s.Seed)
		scale := 1.0
		if td.ScalePct > 0 {
			scale = float64(td.ScalePct) / 100
		}
		p.Updates = int(float64(p.Updates) * scale)
		p.RefsPerUpdate = int(float64(p.RefsPerUpdate) * scale)
		if p.RefsPerUpdate < 1 {
			p.RefsPerUpdate = 1
		}
		tr := trace.Generate(p)
		grp := w.groups[topo.volumes[traceVolume]]
		// Traces are seeded identically on every member, like any other
		// administrative write (SeedServer iterates its manifest in
		// sorted order, so members end identical).
		if err := grp.Each(func(srv *server.Server) error {
			return trace.SeedServer(srv, tr)
		}); err != nil {
			return nil, fmt.Errorf("scenario %s: trace %s: %w", s.Name, td.Name, err)
		}
		w.traces[td.Name] = tr
	}
	return w, nil
}

// serverName is the canonical address of group member i.
func serverName(group string, i int) string { return group + strconv.Itoa(i) }

// startClients constructs every declared Venus. Runs inside sim.Run so
// the client daemons are tracked from their first instant, like every
// harness in the repo.
func (w *world) startClients() {
	for i := range w.scn.Clients {
		cd := &w.scn.Clients[i]
		grp := w.groups[cd.Group]
		w.clients[cd.Name] = venus.New(w.sim, w.net.Host(cd.Name), venus.Config{
			Servers:              grp.Addrs(),
			ClientID:             cd.ID,
			CacheBytes:           cd.CacheBytes,
			AgingWindow:          cd.Aging,
			TrickleInterval:      cd.Trickle,
			ChunkSeconds:         cd.ChunkSeconds,
			PinWriteDisconnected: cd.PinWD,
			Obs:                  w.reg,
		})
	}
}

// mountAll performs the declared mounts in order.
func (w *world) mountAll() error {
	for i := range w.scn.Mounts {
		m := &w.scn.Mounts[i]
		if err := w.clients[m.Client].Mount(m.Volume); err != nil {
			return fmt.Errorf("%s:%d: mount %s %s: %w", w.scn.Name, m.Line, m.Client, m.Volume, err)
		}
	}
	return nil
}

// targetAddrs expands a step target into server addresses: a group name
// yields every member, a member name just itself.
func (w *world) targetAddrs(target string) []string {
	g, idx, isGroup, err := w.topo.resolveTarget(target)
	if err != nil {
		// Validate already vetted every target.
		panic(fmt.Sprintf("scenario: unresolved target %q after validation: %v", target, err))
	}
	if !isGroup {
		return []string{serverName(g, idx)}
	}
	n := w.topo.groups[g].Members
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = serverName(g, i)
	}
	return addrs
}

// execStep runs one schedule step on the live world.
func (w *world) execStep(st *Step) error {
	v := w.clients[st.Client] // nil for server-side steps
	switch st.Kind {
	case StepAt:
		target := w.scheduleStart.Add(st.Dur)
		if d := target.Sub(w.sim.Now()); d > 0 {
			w.sim.Sleep(d)
		}
	case StepAfter:
		w.sim.Sleep(st.Dur)
	case StepWrite:
		return v.WriteFile(st.Path, st.Data)
	case StepMkdir:
		return v.Mkdir(st.Path)
	case StepRemove:
		return v.Remove(st.Path)
	case StepRead:
		data, err := v.ReadFile(st.Path)
		if err != nil {
			return err
		}
		if st.HasData && !bytes.Equal(data, st.Expect) {
			return fmt.Errorf("read %s = %q, want %q", st.Path, clip(data), clip(st.Expect))
		}
	case StepDisconnect:
		v.Disconnect()
	case StepWriteDisc:
		v.WriteDisconnect()
	case StepConnect:
		v.Connect(st.N)
	case StepHoard:
		v.HoardAdd(st.Path, int(st.N), st.Flag)
	case StepHoardWalk:
		return v.HoardWalk()
	case StepReintegrate:
		return v.ForceReintegrate()
	case StepLink:
		for _, addr := range w.targetAddrs(st.Target) {
			switch st.Mode {
			case LinkUp:
				w.net.SetUp(st.Client, addr, true)
			case LinkDown:
				w.net.SetUp(st.Client, addr, false)
			case LinkProfile:
				w.net.SetLink(st.Client, addr, profileByName[st.Profile].Params())
			case LinkParams:
				bw, lat := st.N, st.Latency
				w.net.Configure(st.Client, addr, func(p *netsim.LinkParams) {
					p.Bandwidth = bw
					if lat > 0 {
						p.Latency = lat
					}
				})
			}
		}
	case StepFlap:
		w.scheduleFlaps(st)
	case StepKill:
		g, idx, _, _ := w.topo.resolveTarget(st.Target)
		w.groups[g].Member(idx).Close()
		w.alive[st.Target] = false
	case StepCrashArm:
		g, idx, _, _ := w.topo.resolveTarget(st.Target)
		w.mems[g][idx].ArmCrash(int(st.N), 0)
	case StepRestart:
		return w.restart(st)
	case StepConverge:
		return w.converge(st.Target)
	case StepDrain:
		deadline := w.sim.Now().Add(st.Dur)
		for v.CMLRecords() > 0 && w.sim.Now().Before(deadline) {
			w.sim.Sleep(time.Second)
		}
		if n := v.CMLRecords(); n != 0 {
			return fmt.Errorf("CML still holds %d records after %v", n, st.Dur)
		}
	case StepReplay:
		tr := w.traces[st.Target]
		td := w.traceDecl(st.Target)
		opts := trace.ReplayOpts{Lambda: td.Lambda, OpCost: td.OpCost}
		if opts.Lambda == 0 {
			opts.Lambda = time.Second
		}
		if opts.OpCost == 0 {
			opts.OpCost = 3 * time.Millisecond
		}
		if st.Dur > 0 {
			warm := tr.Slice(0, st.Dur)
			rest := tr.Slice(st.Dur, tr.Duration()+time.Minute)
			trace.Replay(w.sim, v, warm, opts)
			trace.Replay(w.sim, v, rest, opts)
		} else {
			trace.Replay(w.sim, v, tr, opts)
		}
	default:
		return fmt.Errorf("unhandled step kind %q", st.Kind)
	}
	return nil
}

// traceDecl returns the declaration behind a trace name.
func (w *world) traceDecl(name string) *TraceDecl {
	for i := range w.scn.Traces {
		if w.scn.Traces[i].Name == name {
			return &w.scn.Traces[i]
		}
	}
	panic("scenario: unresolved trace " + name)
}

// scheduleFlaps schedules st.N down/up cycles of the client↔target
// links, each period long, starting now. The toggles ride on AfterFunc
// so the schedule continues underneath the churn — the same overlap a
// real flapping link inflicts on a reintegration in flight.
func (w *world) scheduleFlaps(st *Step) {
	addrs := w.targetAddrs(st.Target)
	client := st.Client
	for i := int64(0); i < st.N; i++ {
		down := time.Duration(i) * st.Dur
		up := down + st.Dur/2
		w.sim.AfterFunc(down, func() {
			for _, a := range addrs {
				w.net.SetUp(client, a, false)
			}
		})
		w.sim.AfterFunc(up, func() {
			for _, a := range addrs {
				w.net.SetUp(client, a, true)
			}
		})
	}
}

// restart reboots a member from its journal: the dead process leaves the
// address, the fault disk reboots with only its durable prefix, and a
// fresh server recovers from it, re-creating any volume whose creation
// was lost with the crash (cmd/codasrv does the same at boot). An
// optional `from` peer pulls the missed log suffix immediately;
// otherwise a later converge step repairs.
func (w *world) restart(st *Step) error {
	g, idx, _, _ := w.topo.resolveTarget(st.Target)
	grp := w.groups[g]
	addr := serverName(g, idx)
	grp.Member(idx).Close()
	mem := w.mems[g][idx]
	mem.Reboot()
	fresh := server.New(w.sim, w.net.Host(addr), grp.MemberOptions(idx)...)
	if _, err := fresh.AttachJournal(journalOpts(mem)); err != nil {
		return fmt.Errorf("restart %s: recovery: %w", addr, err)
	}
	for i := range w.scn.Volumes {
		vd := &w.scn.Volumes[i]
		if vd.Group != g {
			continue
		}
		if _, err := fresh.VolumeStamp(vd.Name); err != nil {
			if _, err := fresh.CreateVolume(vd.Name); err != nil {
				return fmt.Errorf("restart %s: recreate volume %s: %w", addr, vd.Name, err)
			}
		}
	}
	if err := grp.ReplaceMember(idx, fresh); err != nil {
		return err
	}
	w.alive[addr] = true
	if st.From != "" {
		if err := fresh.CatchUp(st.From); err != nil {
			return fmt.Errorf("restart %s: catch-up from %s: %w", addr, st.From, err)
		}
	}
	return nil
}

// converge runs group-wide anti-entropy: every live member pulls from
// every other live member (pulls with nothing to fetch are one cheap
// RPC per volume), then lets in-flight ships settle. Divergence inside
// any pull surfaces as this step's error — loud, never repaired
// silently.
func (w *world) converge(groupName string) error {
	grp := w.groups[groupName]
	n := grp.Len()
	for i := 0; i < n; i++ {
		if !w.alive[serverName(groupName, i)] {
			continue
		}
		for j := 0; j < n; j++ {
			if j == i || !w.alive[serverName(groupName, j)] {
				continue
			}
			if err := grp.Member(i).CatchUp(grp.Addrs()[j]); err != nil {
				return fmt.Errorf("member %d catch-up from %d: %w", i, j, err)
			}
		}
	}
	w.sim.Sleep(5 * time.Second)
	return nil
}

// clip bounds content in error messages.
func clip(b []byte) string {
	const max = 64
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}
