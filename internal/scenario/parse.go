package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse reads a scenario (or template) from src. name labels errors and
// becomes the scenario name when the file carries no scenario directive.
// Malformed input returns a wrapped error naming the offending line;
// Parse never panics (FuzzParseScenario pins that contract, the same one
// cml.Load honours for corrupt logs).
func Parse(name string, src []byte) (*Scenario, error) {
	s := &Scenario{Name: name}
	inSchedule := false
	lines := strings.Split(string(src), "\n")
	// A file carrying matrix directives is a template: its body may use
	// ${axis} references in positions that only parse once substituted
	// (integer counts, durations), so only the header is parsed here.
	// Each expanded instance goes through the full parser.
	template := false
	for _, raw := range lines {
		if firstWord(raw) == "matrix" {
			template = true
			break
		}
	}
	for i, raw := range lines {
		if template {
			switch firstWord(raw) {
			case "scenario", "doc", "seed", "matrix":
			default:
				continue // body line; parsed per expanded instance
			}
		}
		lineNo := i + 1
		toks, err := tokenize(raw)
		if err != nil {
			return nil, lineErr(name, lineNo, err)
		}
		if len(toks) == 0 {
			continue
		}
		c := &cursor{toks: toks, i: 1}
		directive := toks[0].text
		if toks[0].quoted {
			return nil, lineErr(name, lineNo, fmt.Errorf("directive must not be quoted"))
		}

		isTopology := true
		switch directive {
		case "scenario":
			n, err := c.word("name")
			if err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			s.Name = n
		case "doc":
			if c.done() {
				return nil, lineErr(name, lineNo, fmt.Errorf("missing doc text"))
			}
			var parts []string
			for !c.done() {
				parts = append(parts, c.must())
			}
			s.Doc = append(s.Doc, strings.Join(parts, " "))
		case "seed":
			v, err := c.integer("seed")
			if err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			s.Seed = v
		case "matrix":
			ax, err := parseAxis(c)
			if err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			s.Axes = append(s.Axes, ax)
		case "group":
			g := GroupDecl{Line: lineNo}
			if g.Name, err = c.word("group name"); err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			if err = c.keyword("members"); err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			n, err := c.integer("member count")
			if err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			g.Members = int(n)
			for !c.done() {
				switch k := c.must(); k {
				case "journal":
					g.Journal = true
				default:
					return nil, lineErr(name, lineNo, fmt.Errorf("unknown group option %q", k))
				}
			}
			s.Groups = append(s.Groups, g)
		case "volume":
			v := VolumeDecl{Line: lineNo}
			if v.Name, err = c.word("volume name"); err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			if !c.done() {
				if err = c.keyword("group"); err != nil {
					return nil, lineErr(name, lineNo, err)
				}
				if v.Group, err = c.word("group name"); err != nil {
					return nil, lineErr(name, lineNo, err)
				}
			}
			s.Volumes = append(s.Volumes, v)
		case "seed-file":
			d := SeedDecl{Line: lineNo}
			if d.Volume, err = c.word("volume"); err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			if d.Path, err = c.any("path"); err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			if d.Data, err = c.content(); err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			s.Seeds = append(s.Seeds, d)
		case "seed-dir":
			d := SeedDecl{Line: lineNo, Dir: true}
			if d.Volume, err = c.word("volume"); err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			if d.Path, err = c.any("path"); err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			s.Seeds = append(s.Seeds, d)
		case "trace":
			t := TraceDecl{Line: lineNo}
			if t.Name, err = c.word("trace name"); err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			if err = c.keyword("segment"); err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			if t.Segment, err = c.word("segment name"); err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			for !c.done() {
				switch k := c.must(); k {
				case "scale":
					n, err := c.integer("scale percent")
					if err != nil {
						return nil, lineErr(name, lineNo, err)
					}
					t.ScalePct = int(n)
				case "lambda":
					if t.Lambda, err = c.duration("lambda"); err != nil {
						return nil, lineErr(name, lineNo, err)
					}
				case "opcost":
					if t.OpCost, err = c.duration("opcost"); err != nil {
						return nil, lineErr(name, lineNo, err)
					}
				default:
					return nil, lineErr(name, lineNo, fmt.Errorf("unknown trace option %q", k))
				}
			}
			s.Traces = append(s.Traces, t)
		case "client":
			cl := ClientDecl{Line: lineNo}
			if cl.Name, err = c.word("client name"); err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			if err = c.keyword("id"); err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			id, err := c.integer("client id")
			if err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			if id <= 0 || id > 1<<31 {
				return nil, lineErr(name, lineNo, fmt.Errorf("client id %d out of range", id))
			}
			cl.ID = uint32(id)
			for !c.done() {
				switch k := c.must(); k {
				case "group":
					if cl.Group, err = c.word("group name"); err != nil {
						return nil, lineErr(name, lineNo, err)
					}
				case "cache":
					if cl.CacheBytes, err = c.integer("cache bytes"); err != nil {
						return nil, lineErr(name, lineNo, err)
					}
				case "aging":
					if cl.Aging, err = c.duration("aging window"); err != nil {
						return nil, lineErr(name, lineNo, err)
					}
				case "trickle":
					if cl.Trickle, err = c.duration("trickle interval"); err != nil {
						return nil, lineErr(name, lineNo, err)
					}
				case "chunk-seconds":
					n, err := c.integer("chunk seconds")
					if err != nil {
						return nil, lineErr(name, lineNo, err)
					}
					cl.ChunkSeconds = int(n)
				case "pin-write-disconnected":
					cl.PinWD = true
				default:
					return nil, lineErr(name, lineNo, fmt.Errorf("unknown client option %q", k))
				}
			}
			s.Clients = append(s.Clients, cl)
		case "mount":
			m := MountDecl{Line: lineNo}
			if m.Client, err = c.word("client"); err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			if m.Volume, err = c.word("volume"); err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			s.Mounts = append(s.Mounts, m)
		case "assert":
			a, err := parseAssert(c, lineNo)
			if err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			s.Asserts = append(s.Asserts, a)
		default:
			isTopology = false
			st, err := parseStep(directive, c, lineNo)
			if err != nil {
				return nil, lineErr(name, lineNo, err)
			}
			s.Steps = append(s.Steps, st)
			inSchedule = true
		}
		if isTopology && inSchedule && directive != "assert" {
			return nil, lineErr(name, lineNo, fmt.Errorf(
				"topology directive %q after the first schedule step", directive))
		}
		if isTopology && !c.done() {
			return nil, lineErr(name, lineNo, fmt.Errorf("trailing arguments after %q directive", directive))
		}
	}
	return s, nil
}

// parseStep parses one schedule directive.
func parseStep(directive string, c *cursor, lineNo int) (Step, error) {
	st := Step{Line: lineNo, Kind: StepKind(directive)}
	var err error
	switch st.Kind {
	case StepAt, StepAfter:
		if st.Dur, err = c.duration("offset"); err != nil {
			return st, err
		}
	case StepWrite:
		if st.Client, err = c.word("client"); err != nil {
			return st, err
		}
		if st.Path, err = c.any("path"); err != nil {
			return st, err
		}
		if st.Data, err = c.content(); err != nil {
			return st, err
		}
		st.HasData = true
	case StepMkdir, StepRemove:
		if st.Client, err = c.word("client"); err != nil {
			return st, err
		}
		if st.Path, err = c.any("path"); err != nil {
			return st, err
		}
	case StepRead:
		if st.Client, err = c.word("client"); err != nil {
			return st, err
		}
		if st.Path, err = c.any("path"); err != nil {
			return st, err
		}
		if !c.done() {
			if err = c.keyword("expect"); err != nil {
				return st, err
			}
			if st.Expect, err = c.content(); err != nil {
				return st, err
			}
			st.HasData = true
		}
	case StepDisconnect, StepWriteDisc, StepHoardWalk, StepReintegrate:
		if st.Client, err = c.word("client"); err != nil {
			return st, err
		}
	case StepConnect:
		if st.Client, err = c.word("client"); err != nil {
			return st, err
		}
		if !c.done() {
			if err = c.keyword("bw"); err != nil {
				return st, err
			}
			if st.N, err = c.integer("bandwidth"); err != nil {
				return st, err
			}
		}
	case StepHoard:
		if st.Client, err = c.word("client"); err != nil {
			return st, err
		}
		if st.Path, err = c.any("path"); err != nil {
			return st, err
		}
		if err = c.keyword("priority"); err != nil {
			return st, err
		}
		if st.N, err = c.integer("priority"); err != nil {
			return st, err
		}
		if !c.done() {
			if err = c.keyword("children"); err != nil {
				return st, err
			}
			st.Flag = true
		}
	case StepLink:
		if st.Client, err = c.word("client"); err != nil {
			return st, err
		}
		if st.Target, err = c.word("server or group"); err != nil {
			return st, err
		}
		mode, err := c.word("link mode")
		if err != nil {
			return st, err
		}
		switch mode {
		case "up":
			st.Mode = LinkUp
		case "down":
			st.Mode = LinkDown
		case "profile":
			st.Mode = LinkProfile
			if st.Profile, err = c.word("profile name"); err != nil {
				return st, err
			}
		case "bw":
			st.Mode = LinkParams
			if st.N, err = c.integer("bandwidth"); err != nil {
				return st, err
			}
			if !c.done() {
				if err = c.keyword("latency"); err != nil {
					return st, err
				}
				if st.Latency, err = c.duration("latency"); err != nil {
					return st, err
				}
			}
		default:
			return st, fmt.Errorf("unknown link mode %q (want up, down, profile, bw)", mode)
		}
	case StepFlap:
		if st.Client, err = c.word("client"); err != nil {
			return st, err
		}
		if st.Target, err = c.word("server or group"); err != nil {
			return st, err
		}
		if st.N, err = c.integer("flap count"); err != nil {
			return st, err
		}
		if err = c.keyword("period"); err != nil {
			return st, err
		}
		if st.Dur, err = c.duration("period"); err != nil {
			return st, err
		}
		if st.N < 0 || st.N > 10_000 {
			return st, fmt.Errorf("flap count %d out of range [0, 10000]", st.N)
		}
	case StepKill, StepConverge:
		if st.Target, err = c.word("target"); err != nil {
			return st, err
		}
	case StepCrashArm:
		if st.Target, err = c.word("server"); err != nil {
			return st, err
		}
		if st.N, err = c.integer("write count"); err != nil {
			return st, err
		}
		if st.N < 1 {
			return st, fmt.Errorf("crash-arm write count must be >= 1, got %d", st.N)
		}
	case StepRestart:
		if st.Target, err = c.word("server"); err != nil {
			return st, err
		}
		if !c.done() {
			if err = c.keyword("from"); err != nil {
				return st, err
			}
			if st.From, err = c.word("peer server"); err != nil {
				return st, err
			}
		}
	case StepDrain:
		if st.Client, err = c.word("client"); err != nil {
			return st, err
		}
		st.Dur = 30 * time.Minute
		if !c.done() {
			if err = c.keyword("within"); err != nil {
				return st, err
			}
			if st.Dur, err = c.duration("deadline"); err != nil {
				return st, err
			}
		}
	case StepReplay:
		if st.Client, err = c.word("client"); err != nil {
			return st, err
		}
		if st.Target, err = c.word("trace name"); err != nil {
			return st, err
		}
		if !c.done() {
			if err = c.keyword("warm"); err != nil {
				return st, err
			}
			if st.Dur, err = c.duration("warm duration"); err != nil {
				return st, err
			}
		}
	default:
		return st, fmt.Errorf("unknown directive %q", directive)
	}
	if !c.done() {
		return st, fmt.Errorf("trailing arguments after %q step", directive)
	}
	return st, nil
}

// parseAssert parses the tail of an assert directive.
func parseAssert(c *cursor, lineNo int) (Assert, error) {
	a := Assert{Line: lineNo}
	kind, err := c.word("assertion kind")
	if err != nil {
		return a, err
	}
	a.Kind = AssertKind(kind)
	switch a.Kind {
	case AssertIdentical:
		if a.Target, err = c.word("group"); err != nil {
			return a, err
		}
	case AssertFile:
		if a.Target, err = c.word("server or group"); err != nil {
			return a, err
		}
		if a.Volume, err = c.word("volume"); err != nil {
			return a, err
		}
		if a.Path, err = c.any("path"); err != nil {
			return a, err
		}
		if a.Data, err = c.content(); err != nil {
			return a, err
		}
	case AssertClientFile:
		if a.Client, err = c.word("client"); err != nil {
			return a, err
		}
		if a.Path, err = c.any("path"); err != nil {
			return a, err
		}
		if a.Data, err = c.content(); err != nil {
			return a, err
		}
	case AssertCMLEmpty:
		if a.Client, err = c.word("client"); err != nil {
			return a, err
		}
	case AssertStamp:
		if a.Target, err = c.word("group"); err != nil {
			return a, err
		}
		if a.Volume, err = c.word("volume"); err != nil {
			return a, err
		}
		if a.Op, a.N, err = c.bound(); err != nil {
			return a, err
		}
	case AssertMetric:
		if a.Metric, err = c.word("metric name"); err != nil {
			return a, err
		}
		for {
			tok, quoted, ok := c.peek()
			if !ok {
				return a, fmt.Errorf("metric assertion needs a bound (== != <= >= < >)")
			}
			if !quoted && isOp(tok) {
				break
			}
			kv, err := c.any("label")
			if err != nil {
				return a, err
			}
			k, v, found := strings.Cut(kv, "=")
			if !found || k == "" {
				return a, fmt.Errorf("label %q is not key=value", kv)
			}
			a.Labels = append(a.Labels, [2]string{k, v})
		}
		if a.Op, a.N, err = c.bound(); err != nil {
			return a, err
		}
	case AssertFailovers:
		if a.Client, err = c.word("client"); err != nil {
			return a, err
		}
		if a.Op, a.N, err = c.bound(); err != nil {
			return a, err
		}
	case AssertElapsed:
		op, err := c.word("comparison")
		if err != nil {
			return a, err
		}
		if !isOp(op) {
			return a, fmt.Errorf("%q is not a comparison operator", op)
		}
		a.Op = op
		if a.Dur, err = c.duration("elapsed bound"); err != nil {
			return a, err
		}
	case AssertState:
		if a.Client, err = c.word("client"); err != nil {
			return a, err
		}
		if a.State, err = c.word("state"); err != nil {
			return a, err
		}
	case AssertSpans:
		if a.Metric, err = c.word("span name"); err != nil {
			return a, err
		}
		if a.State, err = c.word("spans mode (count or dur)"); err != nil {
			return a, err
		}
		switch a.State {
		case "count":
			if a.Op, a.N, err = c.bound(); err != nil {
				return a, err
			}
		case "dur":
			op, err := c.word("comparison")
			if err != nil {
				return a, err
			}
			if !isOp(op) {
				return a, fmt.Errorf("%q is not a comparison operator", op)
			}
			a.Op = op
			if a.Dur, err = c.duration("duration bound"); err != nil {
				return a, err
			}
		default:
			return a, fmt.Errorf("spans mode %q is not count or dur", a.State)
		}
	default:
		return a, fmt.Errorf("unknown assertion kind %q", kind)
	}
	if !c.done() {
		return a, fmt.Errorf("trailing arguments after assert %s", kind)
	}
	return a, nil
}

// parseAxis parses a matrix directive: a variable plus explicit values,
// where a single token of the form a..b expands to the integer range.
func parseAxis(c *cursor) (Axis, error) {
	var ax Axis
	var err error
	if ax.Name, err = c.word("axis name"); err != nil {
		return ax, err
	}
	for !c.done() {
		v, err := c.any("axis value")
		if err != nil {
			return ax, err
		}
		if lo, hi, ok := cutRange(v); ok {
			if hi < lo || hi-lo >= 1000 {
				return ax, fmt.Errorf("range %s spans %d values (max 1000, ascending)", v, hi-lo+1)
			}
			for n := lo; n <= hi; n++ {
				ax.Values = append(ax.Values, strconv.FormatInt(n, 10))
			}
			continue
		}
		ax.Values = append(ax.Values, v)
	}
	if len(ax.Values) == 0 {
		return ax, fmt.Errorf("axis %s has no values", ax.Name)
	}
	return ax, nil
}

// cutRange parses "a..b" into its integer bounds.
func cutRange(s string) (lo, hi int64, ok bool) {
	a, b, found := strings.Cut(s, "..")
	if !found {
		return 0, 0, false
	}
	lo, errA := strconv.ParseInt(a, 10, 64)
	hi, errB := strconv.ParseInt(b, 10, 64)
	if errA != nil || errB != nil {
		return 0, 0, false
	}
	return lo, hi, true
}

// isOp reports whether tok is a comparison operator.
func isOp(tok string) bool {
	switch tok {
	case "==", "!=", "<=", ">=", "<", ">":
		return true
	}
	return false
}

// lineErr wraps err with the file and line it came from.
func lineErr(name string, line int, err error) error {
	return fmt.Errorf("scenario %s:%d: %w", name, line, err)
}

// token is one whitespace-delimited word, possibly a quoted string.
type token struct {
	text   string
	quoted bool
}

// tokenize splits one line into tokens. '#' outside quotes starts a
// comment; quoted strings use Go syntax (strconv.Unquote).
func tokenize(line string) ([]token, error) {
	var out []token
	i := 0
	for i < len(line) {
		switch ch := line[i]; {
		case ch == ' ' || ch == '\t' || ch == '\r':
			i++
		case ch == '#':
			return out, nil
		case ch == '"':
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated quoted string")
			}
			text, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted string %s: %w", line[i:j+1], err)
			}
			out = append(out, token{text: text, quoted: true})
			i = j + 1
		default:
			j := i
			for j < len(line) && line[j] != ' ' && line[j] != '\t' && line[j] != '\r' && line[j] != '#' {
				j++
			}
			out = append(out, token{text: line[i:j]})
			i = j
		}
	}
	return out, nil
}

// cursor walks a token list with typed accessors.
type cursor struct {
	toks []token
	i    int
}

func (c *cursor) done() bool { return c.i >= len(c.toks) }

// peek returns the next token without consuming it.
func (c *cursor) peek() (text string, quoted, ok bool) {
	if c.done() {
		return "", false, false
	}
	return c.toks[c.i].text, c.toks[c.i].quoted, true
}

// must consumes and returns the next token's text; callers have already
// checked done().
func (c *cursor) must() string {
	t := c.toks[c.i].text
	c.i++
	return t
}

// word consumes an unquoted token.
func (c *cursor) word(what string) (string, error) {
	if c.done() {
		return "", fmt.Errorf("missing %s", what)
	}
	t := c.toks[c.i]
	if t.quoted {
		return "", fmt.Errorf("%s must not be quoted", what)
	}
	c.i++
	return t.text, nil
}

// any consumes a token, quoted or not.
func (c *cursor) any(what string) (string, error) {
	if c.done() {
		return "", fmt.Errorf("missing %s", what)
	}
	t := c.toks[c.i]
	c.i++
	return t.text, nil
}

// keyword consumes the expected literal token.
func (c *cursor) keyword(kw string) error {
	if c.done() {
		return fmt.Errorf("missing %q", kw)
	}
	t := c.toks[c.i]
	if t.quoted || t.text != kw {
		return fmt.Errorf("expected %q, got %q", kw, t.text)
	}
	c.i++
	return nil
}

// integer consumes an int64.
func (c *cursor) integer(what string) (int64, error) {
	w, err := c.word(what)
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(w, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", what, err)
	}
	return n, nil
}

// duration consumes a time.ParseDuration value.
func (c *cursor) duration(what string) (time.Duration, error) {
	w, err := c.word(what)
	if err != nil {
		return 0, err
	}
	d, err := time.ParseDuration(w)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", what, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("%s must not be negative", what)
	}
	return d, nil
}

// content consumes file content: either a quoted string or `zeros N`.
func (c *cursor) content() ([]byte, error) {
	if c.done() {
		return nil, fmt.Errorf("missing content (quoted string or zeros N)")
	}
	t := c.toks[c.i]
	if t.quoted {
		c.i++
		return []byte(t.text), nil
	}
	if t.text != "zeros" {
		return nil, fmt.Errorf("content must be a quoted string or zeros N, got %q", t.text)
	}
	c.i++
	n, err := c.integer("zeros size")
	if err != nil {
		return nil, err
	}
	if n < 0 || n > 64<<20 {
		return nil, fmt.Errorf("zeros size %d out of range [0, %d]", n, 64<<20)
	}
	return make([]byte, n), nil
}

// bound consumes a comparison operator and an integer.
func (c *cursor) bound() (string, int64, error) {
	op, err := c.word("comparison")
	if err != nil {
		return "", 0, err
	}
	if !isOp(op) {
		return "", 0, fmt.Errorf("%q is not a comparison operator (want == != <= >= < >)", op)
	}
	n, err := c.integer("bound")
	if err != nil {
		return "", 0, err
	}
	return op, n, nil
}
