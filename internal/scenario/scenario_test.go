package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

const corpusDir = "testdata/scenarios"

// readCorpus loads every .scn file, sorted by name.
func readCorpus(t *testing.T) (names []string, srcs map[string][]byte) {
	t.Helper()
	ents, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	srcs = map[string][]byte{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".scn") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(corpusDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		name := strings.TrimSuffix(e.Name(), ".scn")
		names = append(names, name)
		srcs[name] = src
	}
	sort.Strings(names)
	if len(names) < 4 {
		t.Fatalf("corpus holds %d scenarios, want >= 4", len(names))
	}
	return names, srcs
}

// TestCorpus is the single table-driven test the corpus runs under:
// every scenario file parses, validates, and — unless it is a matrix
// template — runs to a passing result.
func TestCorpus(t *testing.T) {
	names, srcs := readCorpus(t)
	ported := map[string]bool{"replicated_kill_catchup": false, "weaklink_replay": false}
	for _, name := range names {
		if _, ok := ported[name]; ok {
			ported[name] = true
		}
		t.Run(name, func(t *testing.T) {
			s, err := Parse(name, srcs[name])
			if err != nil {
				t.Fatal(err)
			}
			if err := Validate(s); err != nil {
				t.Fatal(err)
			}
			if s.IsTemplate() {
				// Templates are expanded and executed by TestMatrix.
				return
			}
			res, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				for _, f := range res.Failures() {
					t.Error(f)
				}
			}
		})
	}
	for name, seen := range ported {
		if !seen {
			t.Errorf("corpus is missing the ported harness scenario %q", name)
		}
	}
}

// TestMatrix expands the crash template into the full crash-point x
// victim x churn sweep and runs every instance — the generated chaos
// matrix the issue asks for.
func TestMatrix(t *testing.T) {
	_, srcs := readCorpus(t)
	src, ok := srcs["crash_matrix"]
	if !ok {
		t.Fatal("corpus is missing crash_matrix.scn")
	}
	insts, err := ExpandMatrix("crash_matrix", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) < 12 {
		t.Fatalf("matrix expanded to %d instances, want >= 12", len(insts))
	}
	for _, inst := range insts {
		t.Run(inst.Name, func(t *testing.T) {
			res, err := Run(inst.Scenario)
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				for _, f := range res.Failures() {
					t.Error(f)
				}
			}
		})
	}
}

// TestRunDeterministic runs the same scenario twice and requires
// byte-identical result dumps — the determinism contract every metric
// assertion and golden file rests on.
func TestRunDeterministic(t *testing.T) {
	_, srcs := readCorpus(t)
	for _, name := range []string{"disconnected_reintegrate", "replicated_kill_catchup"} {
		var dumps [][]byte
		for round := 0; round < 2; round++ {
			s, err := Parse(name, srcs[name])
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatalf("%s round %d: %v", name, round, res.Failures())
			}
			dumps = append(dumps, res.DumpJSON())
		}
		if !bytes.Equal(dumps[0], dumps[1]) {
			t.Errorf("%s: two identical-seed runs produced different result dumps (%d vs %d bytes)",
				name, len(dumps[0]), len(dumps[1]))
		}
	}
}

// TestGoldenDumps pins the obs registry dump of two seeded corpus runs
// byte-for-byte (extending TestRegistryDumpDeterministic to the DSL
// path). Regenerate with: go test ./internal/scenario -run Golden -update
func TestGoldenDumps(t *testing.T) {
	_, srcs := readCorpus(t)
	for _, name := range []string{"hoard_disconnect", "disconnected_reintegrate"} {
		t.Run(name, func(t *testing.T) {
			s, err := Parse(name, srcs[name])
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK() {
				t.Fatal(res.Failures())
			}
			golden := filepath.Join("testdata", "golden", name+".metrics.json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, res.Metrics, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(res.Metrics, want) {
				t.Errorf("obs dump for %s differs from golden file (%d vs %d bytes); "+
					"run with -update if the change is intended", name, len(res.Metrics), len(want))
			}
		})
	}
}

// TestGoldenTrace pins the Perfetto span export of the weak-link replay
// byte-for-byte: two identical seeded runs must serialize the same trace,
// and that trace must match the checked-in golden file. Regenerate with:
// go test ./internal/scenario -run Golden -update
func TestGoldenTrace(t *testing.T) {
	_, srcs := readCorpus(t)
	const name = "weaklink_replay"
	var traces [][]byte
	for round := 0; round < 2; round++ {
		s, err := Parse(name, srcs[name])
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatal(res.Failures())
		}
		if len(res.Trace) == 0 {
			t.Fatal("run captured no span trace")
		}
		traces = append(traces, res.Trace)
	}
	if !bytes.Equal(traces[0], traces[1]) {
		t.Fatalf("two identical-seed runs exported different traces (%d vs %d bytes)",
			len(traces[0]), len(traces[1]))
	}
	golden := filepath.Join("testdata", "golden", name+".trace.json")
	if *update {
		if err := os.WriteFile(golden, traces[0], 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(traces[0], want) {
		t.Errorf("trace export differs from golden file (%d vs %d bytes); "+
			"run with -update if the change is intended", len(traces[0]), len(want))
	}
}

// TestParseErrors pins the parser's error surface: every malformed
// input returns a wrapped error naming the line, never a panic.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unterminated quote", `write c /f "oops`, "unterminated"},
		{"unknown directive", "frobnicate now", "unknown directive"},
		{"topology after schedule", "group g members 1\nclient c id 1\nmount c v\ndisconnect c\nvolume v", "after the first schedule step"},
		{"bad duration", "after sideways", "offset"},
		{"quoted directive", `"group" g members 3`, "must not be quoted"},
		{"trailing args", "group g members 3 journal extra", "unknown group option"},
		{"axis no values", "matrix crash", "no values"},
		{"range too big", "matrix n 1..99999", "max 1000"},
		{"zeros too big", `write c /f zeros 99999999999`, "out of range"},
		{"metric without bound", "assert metric venus_cml_records", "needs a bound"},
		{"bad label", "assert metric m novalue == 1", "not key=value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("t", []byte(tc.src))
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.src, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Parse(%q) error %q does not contain %q", tc.src, err, tc.want)
			}
			if !strings.Contains(err.Error(), "scenario t:") {
				t.Errorf("error %q does not name the file and line", err)
			}
		})
	}
}

// TestValidateErrors pins reference checking.
func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no group", "client c id 1", "no group declared"},
		{"unknown mount volume", "group g members 1\nclient c id 1\nmount c nope", "unknown volume"},
		{"duplicate client id", "group g members 1\nclient a id 1\nclient b id 1", "already used"},
		{"kill a group", "group g members 2\nkill g", "single server"},
		{"member out of range", "group g members 2\nkill g5", "has 2 members"},
		{"crash-arm without journal", "group g members 1\nclient c id 1\ncrash-arm g0 1", "journal"},
		{"restart with seeds", "group g members 1 journal\nvolume v\nseed-file v f \"x\"\nclient c id 1\nrestart g0", "not journaled"},
		{"unexpanded var", "group g members 1\nclient c id 1\nkill ${victim}", "unexpanded variable"},
		{"unknown state", "group g members 1\nclient c id 1\nassert state c confused", "unknown state"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Parse("t", []byte(tc.src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			err = Validate(s)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate error %v does not contain %q", err, tc.want)
			}
		})
	}
}

// TestMatrixExpansion pins instance naming, ordering, and substitution.
func TestMatrixExpansion(t *testing.T) {
	src := []byte(`scenario tiny
matrix a 1..2
matrix b x y
group g members 1
volume v
client c id 1
mount c v
write c /coda/v/f-${a} "${b}"
`)
	insts, err := ExpandMatrix("tiny", src)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"tiny_a-1_b-x", "tiny_a-1_b-y", "tiny_a-2_b-x", "tiny_a-2_b-y"}
	if len(insts) != len(wantNames) {
		t.Fatalf("got %d instances, want %d", len(insts), len(wantNames))
	}
	for i, inst := range insts {
		if inst.Name != wantNames[i] {
			t.Errorf("instance %d named %q, want %q", i, inst.Name, wantNames[i])
		}
		if inst.Scenario.IsTemplate() {
			t.Errorf("instance %q still a template", inst.Name)
		}
		if strings.Contains(string(inst.Src), "${") {
			t.Errorf("instance %q has unexpanded vars:\n%s", inst.Name, inst.Src)
		}
	}
	if got := insts[3].Scenario.Steps[0].Path; got != "/coda/v/f-2" {
		t.Errorf("last instance path = %q, want /coda/v/f-2", got)
	}
	if got := string(insts[3].Scenario.Steps[0].Data); got != "y" {
		t.Errorf("last instance data = %q, want y", got)
	}
}

// FuzzParseScenario: malformed input must return wrapped errors, never
// panic — the same contract cml.Load honours for corrupt logs. Validate
// and matrix expansion ride along under the same rule.
func FuzzParseScenario(f *testing.F) {
	ents, err := os.ReadDir(corpusDir)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".scn") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(corpusDir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("group g members 3 journal\nvolume v\n")
	f.Add("matrix a 1..5\nkill ${a}\n")
	f.Add(`write c /p "unterminated`)
	f.Add("assert metric m k=v == 3\nassert stamp g v >= -1\n")
	f.Add("\x00\xff group")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse("fuzz", []byte(src))
		if err != nil {
			return
		}
		// Parsed scenarios must survive validation and expansion without
		// panicking either; errors are fine.
		if err := Validate(s); err != nil {
			return
		}
		if s.IsTemplate() {
			_, _ = ExpandMatrix("fuzz", []byte(src))
		}
	})
}
