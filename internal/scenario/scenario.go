// Package scenario is a declarative experiment format for the Coda
// reproduction: one text file describes a deployment topology (replicated
// server groups, clients, volumes, seeded files, trace workloads), a
// schedule of timed steps (link changes, power cuts, kills, restarts,
// reintegration drains, trace replays), and a set of end-state assertions
// (byte-identical replicas, exact volume stamps, metric bounds from the
// obs registry dump). A runner compiles a scenario onto the existing
// simtime/netsim/crashfs/group machinery and executes it deterministically
// under its seed, so every experiment the paper's §5 describes — and every
// chaos variant of it — is a data file instead of a bespoke Go harness.
//
// Scenario files are line-oriented: one directive per line, '#' comments,
// Go-quoted strings for file contents. Topology directives come first,
// schedule steps follow in execution order, and assert directives may
// appear anywhere (they always run after the schedule). A file carrying
// matrix directives is a template: cmd/codascn's matrix command expands
// the cross product of its axes, substituting ${axis} in the body, into
// one concrete scenario per cell — the chaos matrix as generated data.
//
// The format is intentionally small. It covers what the repo's harnesses
// need (the grammar is in DESIGN.md §12); anything fancier should become
// a new step kind here, not a new Go harness.
package scenario

import "time"

// Scenario is one parsed scenario (or template, when Axes is non-empty).
type Scenario struct {
	Name string
	Doc  []string
	Seed int64

	// Axes are matrix sweep dimensions, in declaration order. A scenario
	// with axes (or with unexpanded ${var} references) is a template and
	// cannot run directly; ExpandMatrix turns it into runnable instances.
	Axes []Axis

	Groups  []GroupDecl
	Volumes []VolumeDecl
	Seeds   []SeedDecl
	Traces  []TraceDecl
	Clients []ClientDecl
	Mounts  []MountDecl

	Steps   []Step
	Asserts []Assert
}

// Axis is one matrix sweep dimension.
type Axis struct {
	Name   string
	Values []string
}

// GroupDecl declares a replicated server group. Members are named
// <name>0 .. <name>{n-1}; those names are the servers' network addresses
// and what schedule steps (kill, restart, crash-arm) refer to.
type GroupDecl struct {
	Line    int
	Name    string
	Members int
	// Journal attaches a crashfs.Mem-backed WAL to every member, which
	// is what crash-arm and restart steps manipulate.
	Journal bool
}

// VolumeDecl places a volume on a group.
type VolumeDecl struct {
	Line  int
	Name  string
	Group string // empty: the first declared group
}

// SeedDecl pre-populates server state before any client attaches.
type SeedDecl struct {
	Line   int
	Volume string
	Path   string // volume-relative
	Data   []byte // nil when Dir
	Dir    bool
}

// TraceDecl generates a synthetic workload trace from one of the paper's
// calibrated segment presets and seeds its universe onto the group that
// carries the trace's volume ("usr"). Replay steps refer to it by name.
type TraceDecl struct {
	Line     int
	Name     string
	Segment  string
	ScalePct int           // 0: 100
	Lambda   time.Duration // replay think threshold λ (0: 1s)
	OpCost   time.Duration // per-op client cost (0: 3ms)
}

// ClientDecl declares a Venus client.
type ClientDecl struct {
	Line         int
	Name         string
	ID           uint32
	Group        string // AVSG the client talks to (empty: first group)
	CacheBytes   int64
	Aging        time.Duration
	Trickle      time.Duration
	ChunkSeconds int
	PinWD        bool // PinWriteDisconnected
}

// MountDecl mounts a volume on a client at schedule start.
type MountDecl struct {
	Line   int
	Client string
	Volume string
}

// StepKind enumerates schedule step types.
type StepKind string

// Schedule step kinds.
const (
	StepAt          StepKind = "at"         // advance cursor to absolute offset
	StepAfter       StepKind = "after"      // advance cursor by a delta
	StepWrite       StepKind = "write"      // client file write
	StepMkdir       StepKind = "mkdir"      // client mkdir
	StepRemove      StepKind = "remove"     // client remove
	StepRead        StepKind = "read"       // client read (optional expect)
	StepDisconnect  StepKind = "disconnect" // client: force Emulating
	StepWriteDisc   StepKind = "write-disconnect"
	StepConnect     StepKind = "connect"     // client: reconnect (optional bw hint)
	StepHoard       StepKind = "hoard"       // add an HDB entry
	StepHoardWalk   StepKind = "hoard-walk"  // run a hoard walk
	StepReintegrate StepKind = "reintegrate" // ForceReintegrate
	StepLink        StepKind = "link"        // reconfigure client↔server links
	StepFlap        StepKind = "flap"        // schedule N down/up link cycles
	StepKill        StepKind = "kill"        // close a server in place
	StepCrashArm    StepKind = "crash-arm"   // arm a power cut on a journal write
	StepRestart     StepKind = "restart"     // reboot a server from its journal
	StepConverge    StepKind = "converge"    // group-wide anti-entropy
	StepDrain       StepKind = "drain"       // wait until the client CML is empty
	StepReplay      StepKind = "replay"      // replay a declared trace
)

// LinkMode says what a link step does.
type LinkMode string

// Link step modes.
const (
	LinkUp      LinkMode = "up"
	LinkDown    LinkMode = "down"
	LinkProfile LinkMode = "profile"
	LinkParams  LinkMode = "params"
)

// Step is one schedule entry. Fields are a union over kinds; Kind decides
// which are meaningful (the parser only fills the relevant ones).
type Step struct {
	Line int
	Kind StepKind

	Client  string
	Target  string // server or group name (link, flap, kill, crash-arm, restart, converge)
	Path    string
	Data    []byte
	Expect  []byte // read: expected content (nil: existence only)
	HasData bool   // write/read carry content
	N       int64  // zeros size, bw, crash-arm count, flap count, hoard priority
	Dur     time.Duration
	Mode    LinkMode
	Profile string // link profile name
	Latency time.Duration
	From    string // restart: catch-up peer
	Flag    bool   // hoard: children
}

// AssertKind enumerates assertion types.
type AssertKind string

// Assertion kinds.
const (
	AssertIdentical  AssertKind = "identical"   // byte-identical SaveState across a group
	AssertFile       AssertKind = "file"        // server-side file content on every member
	AssertClientFile AssertKind = "client-file" // content read through a client
	AssertCMLEmpty   AssertKind = "cml-empty"   // client CML fully reintegrated
	AssertStamp      AssertKind = "stamp"       // exact volume version stamp on every member
	AssertMetric     AssertKind = "metric"      // bound on a series in the final obs dump
	AssertFailovers  AssertKind = "failovers"   // client failover count bound
	AssertElapsed    AssertKind = "elapsed"     // schedule elapsed sim-time bound
	AssertState      AssertKind = "state"       // client end state (hoarding, emulating, ...)
	AssertSpans      AssertKind = "spans"       // bound on traced spans (count or total duration)
)

// Assert is one end-state check.
type Assert struct {
	Line int
	Kind AssertKind

	Client string
	Target string // group or server
	Volume string
	Path   string
	Data   []byte

	Metric string      // metric name; span name for spans asserts
	Labels [][2]string // required label subset, sorted by key

	Op  string // == != <= >= < >
	N   int64
	Dur time.Duration

	State string // client state; "count" or "dur" for spans asserts
}

// IsTemplate reports whether s declares matrix axes and therefore needs
// expansion before it can run.
func (s *Scenario) IsTemplate() bool { return len(s.Axes) > 0 }
