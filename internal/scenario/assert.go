package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// evalAssert evaluates one end-state assertion against the finished
// world and the captured metrics snapshot.
func (w *world) evalAssert(a *Assert, res *Result) AssertResult {
	ok, detail := w.checkAssert(a, res)
	return AssertResult{Line: a.Line, Kind: string(a.Kind), OK: ok, Detail: detail}
}

func (w *world) checkAssert(a *Assert, res *Result) (bool, string) {
	switch a.Kind {
	case AssertIdentical:
		return w.checkIdentical(a.Target)
	case AssertFile:
		return w.checkServerFile(a)
	case AssertClientFile:
		data, err := w.clients[a.Client].ReadFile(a.Path)
		if err != nil {
			return false, fmt.Sprintf("%s: read %s: %v", a.Client, a.Path, err)
		}
		if !bytes.Equal(data, a.Data) {
			return false, fmt.Sprintf("%s: %s = %q, want %q", a.Client, a.Path, clip(data), clip(a.Data))
		}
		return true, fmt.Sprintf("%s: %s matches (%d bytes)", a.Client, a.Path, len(data))
	case AssertCMLEmpty:
		if n := w.clients[a.Client].CMLRecords(); n != 0 {
			return false, fmt.Sprintf("%s: CML holds %d records", a.Client, n)
		}
		return true, a.Client + ": CML empty"
	case AssertStamp:
		return w.checkStamp(a)
	case AssertMetric:
		return w.checkMetric(a, res.Metrics)
	case AssertFailovers:
		got := int64(w.clients[a.Client].Stats().Failovers)
		return cmpInt(fmt.Sprintf("%s failovers", a.Client), got, a.Op, a.N)
	case AssertElapsed:
		got := res.ElapsedSimUS
		want := a.Dur.Microseconds()
		return cmpInt("elapsed sim time (us)", got, a.Op, want)
	case AssertState:
		got := w.clients[a.Client].State().String()
		if got != a.State {
			return false, fmt.Sprintf("%s state = %s, want %s", a.Client, got, a.State)
		}
		return true, fmt.Sprintf("%s state = %s", a.Client, got)
	case AssertSpans:
		return w.checkSpans(a)
	}
	return false, fmt.Sprintf("unhandled assert kind %q", a.Kind)
}

// checkIdentical byte-compares SaveState across every member of a
// group — the strongest replica-equality check the server offers
// (volumes, vnodes, stamps, and log chains all feed it).
func (w *world) checkIdentical(groupName string) (bool, string) {
	grp := w.groups[groupName]
	var ref bytes.Buffer
	if err := grp.Member(0).SaveState(&ref); err != nil {
		return false, fmt.Sprintf("%s0: save state: %v", groupName, err)
	}
	for i := 1; i < grp.Len(); i++ {
		var got bytes.Buffer
		if err := grp.Member(i).SaveState(&got); err != nil {
			return false, fmt.Sprintf("%s: save state: %v", serverName(groupName, i), err)
		}
		if !bytes.Equal(ref.Bytes(), got.Bytes()) {
			return false, fmt.Sprintf("%s differs from %s0 (%d vs %d state bytes)",
				serverName(groupName, i), groupName, got.Len(), ref.Len())
		}
	}
	return true, fmt.Sprintf("%s: %d replicas byte-identical (%d state bytes)", groupName, grp.Len(), ref.Len())
}

// checkServerFile verifies file content on every member the target
// names (all of a group, or one server).
func (w *world) checkServerFile(a *Assert) (bool, string) {
	g, idx, isGroup, err := w.topo.resolveTarget(a.Target)
	if err != nil {
		return false, err.Error()
	}
	grp := w.groups[g]
	first, last := idx, idx
	if isGroup {
		first, last = 0, grp.Len()-1
	}
	for i := first; i <= last; i++ {
		data, err := grp.Member(i).ReadFile(a.Volume, a.Path)
		if err != nil {
			return false, fmt.Sprintf("%s: read %s/%s: %v", serverName(g, i), a.Volume, a.Path, err)
		}
		if !bytes.Equal(data, a.Data) {
			return false, fmt.Sprintf("%s: %s/%s = %q, want %q",
				serverName(g, i), a.Volume, a.Path, clip(data), clip(a.Data))
		}
	}
	return true, fmt.Sprintf("%s: %s/%s matches on members %d..%d", a.Target, a.Volume, a.Path, first, last)
}

// checkStamp verifies the exact volume version stamp on every member of
// a group — the update-count ledger the paper's reintegration protocol
// keys off.
func (w *world) checkStamp(a *Assert) (bool, string) {
	grp := w.groups[a.Target]
	for i := 0; i < grp.Len(); i++ {
		got, err := grp.Member(i).VolumeStamp(a.Volume)
		if err != nil {
			return false, fmt.Sprintf("%s: stamp %s: %v", serverName(a.Target, i), a.Volume, err)
		}
		if ok, detail := cmpInt(fmt.Sprintf("%s stamp(%s)", serverName(a.Target, i), a.Volume), int64(got), a.Op, a.N); !ok {
			return false, detail
		}
	}
	return true, fmt.Sprintf("%s: stamp(%s) %s %d on all %d members", a.Target, a.Volume, a.Op, a.N, grp.Len())
}

// checkSpans bounds the traced spans carrying the asserted name: their
// count, or the sum of their durations. A count bound against zero
// holds when no span matched (an operation that never fired leaves no
// spans), exactly like metric assertions on absent counters.
func (w *world) checkSpans(a *Assert) (bool, string) {
	var count, totalUS int64
	for _, sp := range w.reg.Spans() {
		if sp.Name != a.Metric {
			continue
		}
		count++
		totalUS += sp.Duration().Microseconds()
	}
	if a.State == "dur" {
		return cmpInt(fmt.Sprintf("spans %s total duration (us)", a.Metric), totalUS, a.Op, a.Dur.Microseconds())
	}
	return cmpInt(fmt.Sprintf("spans %s count", a.Metric), count, a.Op, a.N)
}

// dumpSeries mirrors the subset of the obs dump a metric assertion
// reads.
type dumpSeries struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels"`
	Value  int64             `json:"value"`
	Sum    int64             `json:"sum"`
	Count  int64             `json:"count"`
	Kind   string            `json:"kind"`
}

// checkMetric sums every series in the captured dump matching the
// assertion's name and label subset, then applies the bound. Histograms
// contribute their observation count. A bound against zero holds even
// when no series matched (counters that never fired may be absent).
func (w *world) checkMetric(a *Assert, dump []byte) (bool, string) {
	var doc struct {
		Metrics []dumpSeries `json:"metrics"`
	}
	if err := json.Unmarshal(dump, &doc); err != nil {
		return false, fmt.Sprintf("parse metrics dump: %v", err)
	}
	var total int64
	matched := 0
	for _, m := range doc.Metrics {
		if m.Name != a.Metric || !labelsMatch(m.Labels, a.Labels) {
			continue
		}
		matched++
		if m.Kind == "histogram" {
			total += m.Count
		} else {
			total += m.Value
		}
	}
	name := a.Metric
	if len(a.Labels) > 0 {
		name += fmt.Sprintf("%v", a.Labels)
	}
	ok, detail := cmpInt(name, total, a.Op, a.N)
	if matched == 0 {
		detail += " (no series matched)"
	}
	return ok, detail
}

// labelsMatch reports whether the series labels contain every required
// pair.
func labelsMatch(got map[string]string, want [][2]string) bool {
	for _, kv := range want {
		if got[kv[0]] != kv[1] {
			return false
		}
	}
	return true
}

// cmpInt applies a comparison operator and renders the verdict.
func cmpInt(what string, got int64, op string, want int64) (bool, string) {
	var ok bool
	switch op {
	case "==":
		ok = got == want
	case "!=":
		ok = got != want
	case "<=":
		ok = got <= want
	case ">=":
		ok = got >= want
	case "<":
		ok = got < want
	case ">":
		ok = got > want
	default:
		return false, fmt.Sprintf("%s: unknown operator %q", what, op)
	}
	if !ok {
		return false, fmt.Sprintf("%s = %d, want %s %d", what, got, op, want)
	}
	return true, fmt.Sprintf("%s = %d (%s %d)", what, got, op, want)
}
