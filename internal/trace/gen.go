package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/codafs"
)

// GenParams shapes a synthetic file-reference trace. The generator's model
// of user activity is the one the paper's analyses depend on: bursts of
// writes to the same file separated by think time (whose spacing determines
// how the aging window limits log optimizations), temporary files created
// and deleted within the trace (identity cancellations), and a large volume
// of reads, stats, and lookups around the updates.
type GenParams struct {
	Name   string
	Seed   int64
	Volume string
	// Duration is the trace's span.
	Duration time.Duration
	// Updates is the target number of update operations.
	Updates int
	// RefsPerUpdate is the ratio of total references to updates (the
	// paper's segments run roughly 30:1 to 200:1).
	RefsPerUpdate int
	// MeanWriteKB is the mean store size in KB (exponentially
	// distributed around this mean).
	MeanWriteKB float64
	// RewriteMean is the mean number of consecutive writes to the same
	// file within an episode. Compressibility ≈ 1 − 1/RewriteMean for
	// size-stable rewrites, so 1.09 → ~8 % and 16 → ~94 %.
	RewriteMean float64
	// RewriteGap is the mean think time between successive writes of the
	// same file; it decides how large an aging window is needed to
	// capture the cancellations (Figure 4's x-axis).
	RewriteGap time.Duration
	// TempFileFrac is the fraction of episodes that create, write, and
	// delete a scratch file (fully cancellable).
	TempFileFrac float64
	// Universe shape.
	DirCount    int
	FilesPerDir int
	// MeanFileKB sizes the pre-existing files that reads reference.
	MeanFileKB float64
	// KeepAbsoluteGaps disables rescaling of think times to fit Duration;
	// the trace then spans whatever the gaps sum to. The week-long traces
	// use it so the rewrite spacing that shapes Figure 4 stays exact.
	KeepAbsoluteGaps bool
}

func (p *GenParams) fillDefaults() {
	if p.Volume == "" {
		p.Volume = "usr"
	}
	if p.Duration == 0 {
		p.Duration = 45 * time.Minute
	}
	if p.Updates == 0 {
		p.Updates = 500
	}
	if p.RefsPerUpdate == 0 {
		p.RefsPerUpdate = 60
	}
	if p.MeanWriteKB == 0 {
		p.MeanWriteKB = 6
	}
	if p.RewriteMean < 1 {
		p.RewriteMean = 1.2
	}
	if p.RewriteGap == 0 {
		p.RewriteGap = 30 * time.Second
	}
	if p.DirCount == 0 {
		p.DirCount = 12
	}
	if p.FilesPerDir == 0 {
		p.FilesPerDir = 20
	}
	if p.MeanFileKB == 0 {
		p.MeanFileKB = 8
	}
}

// Generate produces a deterministic trace from p.
func Generate(p GenParams) *Trace {
	p.fillDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	tr := &Trace{Name: p.Name, Volume: p.Volume, Manifest: make(map[string]int)}

	// Universe of pre-existing files.
	paths := make([]string, 0, p.DirCount*p.FilesPerDir)
	for d := 0; d < p.DirCount; d++ {
		for f := 0; f < p.FilesPerDir; f++ {
			path := codafs.JoinPath(p.Volume, fmt.Sprintf("d%02d", d), fmt.Sprintf("f%03d.dat", f))
			size := expSize(rng, p.MeanFileKB)
			tr.Manifest[path] = size
			paths = append(paths, path)
		}
	}

	type ev struct {
		rec Record
		gap time.Duration // think time before this event
	}
	var events []ev
	push := func(r Record, gap time.Duration) {
		events = append(events, ev{rec: r, gap: gap})
	}

	readGap := func() time.Duration {
		// Mixture of rapid bursts and think pauses; λ = 1 s and 10 s
		// (the paper's think thresholds) cut it differently. The burst
		// rate matches the segments' ~19 references/second of sustained
		// high activity.
		switch x := rng.Float64(); {
		case x < 0.96:
			return time.Duration(15+rng.Intn(45)) * time.Millisecond
		case x < 0.99:
			return time.Duration(1000+rng.Intn(3000)) * time.Millisecond
		case x < 0.997:
			return time.Duration(10+rng.Intn(50)) * time.Second
		default:
			return time.Duration(60+rng.Intn(240)) * time.Second
		}
	}
	pushReads := func(n int) {
		for i := 0; i < n; i++ {
			path := paths[rng.Intn(len(paths))]
			var r Record
			switch x := rng.Float64(); {
			case x < 0.55:
				r = Record{Op: OpRead, Path: path, Program: "emacs"}
			case x < 0.85:
				r = Record{Op: OpStat, Path: path, Program: "csh"}
			default:
				r = Record{Op: OpReadDir, Path: parentOf(path), Program: "csh"}
			}
			push(r, readGap())
		}
	}

	geometric := func(mean float64) int {
		if mean <= 1 {
			return 1
		}
		// Geometric with mean `mean`: success prob 1/mean.
		k := 1
		for rng.Float64() > 1/mean && k < 200 {
			k++
		}
		return k
	}
	rewriteGap := func() time.Duration {
		// Lognormal-ish around p.RewriteGap.
		f := math.Exp(rng.NormFloat64() * 0.7)
		return time.Duration(float64(p.RewriteGap) * f)
	}

	// Episodes draw write targets without replacement so that only
	// intra-episode rewrites cancel; real users rarely revisit the same
	// file across distant sessions within a 45-minute segment, and cross-
	// episode cancellation would inflate compressibility past the
	// calibration targets.
	writeOrder := rng.Perm(len(paths))
	writeIdx := 0
	nextTarget := func() string {
		if writeIdx >= len(writeOrder) {
			writeOrder = rng.Perm(len(paths))
			writeIdx = 0
		}
		path := paths[writeOrder[writeIdx]]
		writeIdx++
		return path
	}

	updates := 0
	tmpSeq := 0
	for updates < p.Updates {
		k := geometric(p.RewriteMean)
		temp := rng.Float64() < p.TempFileFrac
		size := expSize(rng, p.MeanWriteKB)
		var path string
		if temp {
			tmpSeq++
			path = codafs.JoinPath(p.Volume, fmt.Sprintf("d%02d", rng.Intn(p.DirCount)), fmt.Sprintf("tmp%05d", tmpSeq))
		} else {
			path = nextTarget()
		}
		for i := 0; i < k; i++ {
			jitter := 0.9 + 0.2*rng.Float64()
			push(Record{Op: OpWrite, Path: path, Size: int(float64(size) * jitter), Program: "emacs"}, rewriteGap())
			updates++
			// A burst of reads accompanies each write.
			pushReads(p.RefsPerUpdate * 2 / 3)
		}
		if temp {
			push(Record{Op: OpRemove, Path: path, Program: "emacs"}, rewriteGap())
			updates++
		}
		pushReads(p.RefsPerUpdate / 3)
	}

	// Normalize think times so the trace spans exactly p.Duration
	// (unless the caller needs the raw gap structure preserved).
	scale := 1.0
	if !p.KeepAbsoluteGaps {
		var totalGap time.Duration
		for _, e := range events {
			totalGap += e.gap
		}
		scale = float64(p.Duration) / float64(totalGap)
	}
	t := time.Duration(0)
	tr.Records = make([]Record, len(events))
	for i, e := range events {
		t += time.Duration(float64(e.gap) * scale)
		e.rec.T = t
		tr.Records[i] = e.rec
	}
	return tr
}

func expSize(rng *rand.Rand, meanKB float64) int {
	s := int(rng.ExpFloat64() * meanKB * 1024)
	if s < 128 {
		s = 128
	}
	if s > 4<<20 {
		s = 4 << 20
	}
	return s
}

func parentOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return path
}

// ---- Presets calibrated to the paper ----

// SegmentPreset returns generation parameters for the four 45-minute trace
// segments of Figure 11 (Purcell 8 %, Holst 32 %, Messiaen 69 %, Concord
// 94 % compressibility). seed varies the instance while preserving the
// calibrated statistics; seed 0 is the canonical instance.
func SegmentPreset(name string, seed int64) GenParams {
	base := GenParams{
		Name:     name,
		Seed:     seed,
		Volume:   "usr",
		Duration: 45 * time.Minute,
	}
	switch name {
	case "Purcell":
		base.Seed += 100
		base.Updates = 519
		base.RefsPerUpdate = 99
		base.MeanWriteKB = 5.0
		base.RewriteMean = 1.09
		base.RewriteGap = 12 * time.Second
		base.TempFileFrac = 0.0
		base.DirCount = 30
		base.FilesPerDir = 20
	case "Holst":
		base.Seed += 200
		base.Updates = 596
		base.RefsPerUpdate = 102
		base.MeanWriteKB = 5.3
		base.RewriteMean = 1.47
		base.RewriteGap = 12 * time.Second
		base.TempFileFrac = 0.02
		base.DirCount = 25
		base.FilesPerDir = 20
	case "Messiaen":
		base.Seed += 300
		base.Updates = 188
		base.RefsPerUpdate = 203
		base.MeanWriteKB = 35
		base.RewriteMean = 3.3
		base.RewriteGap = 15 * time.Second
		base.TempFileFrac = 0.03
	case "Concord":
		base.Seed += 400
		base.Updates = 1273
		base.RefsPerUpdate = 125
		base.MeanWriteKB = 26
		base.RewriteMean = 17
		base.RewriteGap = 10 * time.Second
		base.TempFileFrac = 0.02
	default:
		panic("trace: unknown segment preset " + name)
	}
	return base
}

// SegmentNames lists the Figure 11 segments in the paper's order.
var SegmentNames = []string{"Purcell", "Holst", "Messiaen", "Concord"}

// WeekPreset returns generation parameters for the five week-long traces
// of the aging study (Figure 4). The presets differ in rewrite spacing,
// which is what spreads the curves: purcell's rewrites come seconds apart
// (high savings even at small A), while ives and concord space them tens of
// minutes apart (savings need A near an hour). Volumes are scaled ~1/8 of
// the paper's to keep the analysis quick; Figure 4 is normalized, so the
// scale cancels.
func WeekPreset(name string, seed int64) GenParams {
	base := GenParams{
		Name:     name,
		Seed:     seed,
		Volume:   "usr",
		Duration: 7 * 24 * time.Hour,
	}
	switch name {
	case "ives": // savings accrue slowly: long autosave-style gaps
		base.Seed += 1000
		base.Updates = 900
		base.RewriteMean = 4
		base.RewriteGap = 11 * time.Minute
		base.MeanWriteKB = 9
		base.TempFileFrac = 0.01
	case "concord": // huge volume, medium-long gaps
		base.Seed += 2000
		base.Updates = 2400
		base.RewriteMean = 14
		base.RewriteGap = 4 * time.Minute
		base.MeanWriteKB = 30
		base.TempFileFrac = 0.01
	case "holst": // quick bursts: optimizations effective at small A
		base.Seed += 3000
		base.Updates = 8000
		base.RewriteMean = 2.2
		base.RewriteGap = 45 * time.Second
		base.MeanWriteKB = 7
		base.TempFileFrac = 0.05
	case "messiaen": // medium gaps
		base.Seed += 4000
		base.Updates = 3300
		base.RewriteMean = 3.5
		base.RewriteGap = 2 * time.Minute
		base.MeanWriteKB = 17
		base.TempFileFrac = 0.02
	case "purcell": // very tight bursts
		base.Seed += 5000
		base.Updates = 7000
		base.RewriteMean = 2.0
		base.RewriteGap = 10 * time.Second
		base.MeanWriteKB = 8
		base.TempFileFrac = 0.04
	default:
		panic("trace: unknown week preset " + name)
	}
	base.RefsPerUpdate = 1 // the aging analysis only consumes updates
	base.KeepAbsoluteGaps = true
	base.DirCount = 40
	base.FilesPerDir = 25
	return base
}

// WeekNames lists the Figure 4 traces in the paper's legend order.
var WeekNames = []string{"ives", "concord", "holst", "messiaen", "purcell"}
