package trace

import (
	"errors"
	"sort"
	"time"

	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/venus"
)

// CMLAnalysis summarizes one pass of a trace through the CML simulator —
// the paper's "Venus simulator" methodology (§4.3.4): the trace's updates
// are logged, records older than the aging window are (conceptually)
// reintegrated away and thereby lost to optimization, and the savings are
// measured.
type CMLAnalysis struct {
	// AppendedBytes is the unoptimized CML volume: every update record's
	// size, including store data, before any cancellation.
	AppendedBytes int64
	// SavedBytes is the volume cancelled by log optimizations.
	SavedBytes int64
	// DrainedBytes is the volume that aged past the window and was
	// reintegrated (thus protected from cancellation).
	DrainedBytes int64
	// FinalBytes is what remains in the log at the end of the trace.
	FinalBytes int64
	// Updates is the number of update records offered.
	Updates int
}

// Compressibility is SavedBytes/AppendedBytes — the §6.2.1 metric behind
// Figures 10 and 11 (there computed with an infinite window).
func (a CMLAnalysis) Compressibility() float64 {
	if a.AppendedBytes == 0 {
		return 0
	}
	return float64(a.SavedBytes) / float64(a.AppendedBytes)
}

// NoAging disables draining in AnalyzeCML: every record stays optimizable
// for the whole trace.
const NoAging = time.Duration(-1)

// AnalyzeCML feeds the trace's updates through a real CML with the given
// aging window. Records older than the window are drained (reintegrated)
// before each append, exactly as trickle reintegration would, so only
// records of age ≤ aging are subject to optimization (Figure 4's model).
func AnalyzeCML(tr *Trace, aging time.Duration) CMLAnalysis {
	log := cml.NewLog()
	base := simtime.Epoch1995
	var out CMLAnalysis

	fids := make(map[string]codafs.FID)
	var nextVnode uint64 = 100
	dirFID := codafs.FID{Volume: 1, Vnode: 1, Unique: 1}
	fidFor := func(path string) codafs.FID {
		if f, ok := fids[path]; ok {
			return f
		}
		nextVnode++
		f := codafs.FID{Volume: 1, Vnode: nextVnode, Unique: nextVnode}
		fids[path] = f
		return f
	}
	exists := make(map[string]bool)
	for p := range tr.Manifest {
		exists[p] = true
	}

	appendRec := func(r cml.Record, now time.Time) {
		out.AppendedBytes += r.Size()
		out.Updates++
		log.Append(r, now)
	}

	for _, r := range tr.Records {
		now := base.Add(r.T)
		if aging >= 0 {
			for {
				chunk := log.BeginReintegration(aging, 1<<62, now)
				if chunk == nil {
					break
				}
				for _, c := range chunk {
					out.DrainedBytes += c.Size()
				}
				log.CommitReintegration()
			}
		}
		switch r.Op {
		case OpWrite:
			fid := fidFor(r.Path)
			if !exists[r.Path] {
				exists[r.Path] = true
				appendRec(cml.Record{Kind: cml.Create, FID: fid, Parent: dirFID, Name: r.Path}, now)
			}
			appendRec(cml.Record{
				Kind: cml.Store, FID: fid, Parent: dirFID, Name: r.Path,
				Data: make([]byte, r.Size), Length: int64(r.Size),
			}, now)
		case OpRemove:
			if exists[r.Path] {
				exists[r.Path] = false
				appendRec(cml.Record{Kind: cml.Remove, FID: fidFor(r.Path), Parent: dirFID, Name: r.Path}, now)
				delete(fids, r.Path)
			}
		case OpMkdir:
			appendRec(cml.Record{Kind: cml.Mkdir, FID: fidFor(r.Path), Parent: dirFID, Name: r.Path}, now)
		case OpRmdir:
			appendRec(cml.Record{Kind: cml.Rmdir, FID: fidFor(r.Path), Parent: dirFID, Name: r.Path}, now)
		case OpSymlink:
			appendRec(cml.Record{Kind: cml.MakeSymlink, FID: fidFor(r.Path), Parent: dirFID, Name: r.Path, Target: r.Path2}, now)
		case OpRename:
			appendRec(cml.Record{
				Kind: cml.Rename, FID: fidFor(r.Path), Parent: dirFID, Name: r.Path,
				NewParent: dirFID, NewName: r.Path2,
			}, now)
		}
	}
	out.SavedBytes = log.SavedBytes()
	out.FinalBytes = log.Bytes()
	return out
}

// SeedServer creates the trace's volume and pre-existing files on srv.
// Files are created in sorted path order so FID assignment is
// deterministic: seeding the same trace onto every member of a
// replicated group leaves the members byte-identical.
func SeedServer(srv *server.Server, tr *Trace) error {
	if _, err := srv.CreateVolume(tr.Volume); err != nil {
		return err
	}
	paths := make([]string, 0, len(tr.Manifest))
	for path := range tr.Manifest {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		size := tr.Manifest[path]
		_, comps, err := codafs.SplitPath(path)
		if err != nil {
			return err
		}
		rel := ""
		for i, c := range comps {
			if i > 0 {
				rel += "/"
			}
			rel += c
		}
		if _, err := srv.WriteFile(tr.Volume, rel, make([]byte, size)); err != nil {
			return err
		}
	}
	return nil
}

// ReplayStats reports the outcome of a live replay.
type ReplayStats struct {
	Ops         int
	Updates     int
	Errors      int
	CacheMisses int
	Elapsed     time.Duration
}

// ReplayOpts tunes a live replay.
type ReplayOpts struct {
	// Lambda is the think threshold λ of §6.2.1: trace delays shorter
	// than it are elided, the rest preserved on the clock.
	Lambda time.Duration
	// OpCost models the client's local cost per operation (system-call
	// handling, cache walk). The emulator charges only network time, so
	// without this, replays on a cache-warm client would take zero
	// virtual time regardless of think times.
	OpCost time.Duration
}

// Replay drives the trace through a live Venus (§6.2.1): operations become
// Venus calls. Replay continues past per-op errors (misses are expected
// while weakly connected) and returns counts.
func Replay(clock simtime.Clock, v *venus.Venus, tr *Trace, opts ReplayOpts) ReplayStats {
	var st ReplayStats
	start := clock.Now()
	var prev time.Duration
	for i := range tr.Records {
		r := &tr.Records[i]
		gap := r.T - prev
		prev = r.T
		if gap >= opts.Lambda {
			clock.Sleep(gap)
		}
		if opts.OpCost > 0 {
			clock.Sleep(opts.OpCost)
		}
		st.Ops++
		var err error
		switch r.Op {
		case OpRead:
			_, err = v.ReadFile(r.Path)
		case OpWrite:
			err = v.WriteFile(r.Path, make([]byte, r.Size))
			st.Updates++
		case OpStat:
			_, err = v.Stat(r.Path)
		case OpReadDir:
			_, err = v.ReadDir(r.Path)
		case OpMkdir:
			err = v.Mkdir(r.Path)
			st.Updates++
		case OpRemove:
			err = v.Remove(r.Path)
			st.Updates++
		case OpRmdir:
			err = v.Rmdir(r.Path)
			st.Updates++
		case OpRename:
			err = v.Rename(r.Path, r.Path2)
			st.Updates++
		case OpSymlink:
			err = v.Symlink(r.Path2, r.Path)
			st.Updates++
		}
		if err != nil {
			if errors.Is(err, venus.ErrCacheMiss) {
				st.CacheMisses++
			} else {
				st.Errors++
			}
		}
	}
	st.Elapsed = clock.Now().Sub(start)
	return st
}
