// Package trace provides the file-reference trace machinery behind the
// paper's evaluation: a record format, a deterministic synthetic workload
// generator with presets calibrated to the published trace segments
// (Figure 11), a replay engine with the think-threshold λ of §6.2.1, and
// the CML analysis used for the aging study (Figure 4) and compressibility
// survey (Figure 10).
//
// The original CMU traces are not distributable here, so the generator
// reproduces their published aggregate properties — reference and update
// counts, unoptimized CML volume, and compressibility (the fraction of CML
// bytes cancelled by log optimizations) — which are the only properties the
// analyses depend on. DESIGN.md records this substitution.
package trace

import (
	"fmt"
	"time"
)

// Op enumerates replayable operations. Coda uses open-close session
// semantics, so individual reads and writes do not appear; OpWrite is a
// close-after-write (a store), OpRead a close-after-read.
type Op uint8

// Operations.
const (
	OpRead Op = iota + 1
	OpWrite
	OpStat
	OpReadDir
	OpMkdir
	OpRemove
	OpRename
	OpRmdir
	OpSymlink
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpStat:
		return "stat"
	case OpReadDir:
		return "readdir"
	case OpMkdir:
		return "mkdir"
	case OpRemove:
		return "remove"
	case OpRename:
		return "rename"
	case OpRmdir:
		return "rmdir"
	case OpSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// IsUpdate reports whether the operation mutates the file system (the
// paper's "Updates" column); references include updates plus reads, stats,
// and lookups.
func (o Op) IsUpdate() bool {
	switch o {
	case OpWrite, OpMkdir, OpRemove, OpRename, OpRmdir, OpSymlink:
		return true
	}
	return false
}

// Record is one traced file reference.
type Record struct {
	// T is the offset from the start of the trace.
	T time.Duration
	// Op is the operation.
	Op Op
	// Path is the primary object, an absolute /coda path.
	Path string
	// Path2 is the rename destination.
	Path2 string
	// Size is the stored length for OpWrite.
	Size int
	// Program names the referencing program (Figure 5 context).
	Program string
}

// Trace is a sequence of records plus the initial file universe they
// reference.
type Trace struct {
	Name    string
	Records []Record
	// Manifest is the pre-existing file tree (path → size) that must be
	// seeded at the server before replay. Directories are implied.
	Manifest map[string]int
	// Volume is the volume name all paths live in.
	Volume string
}

// Duration returns the trace's span.
func (t *Trace) Duration() time.Duration {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].T
}

// Counts returns the reference and update totals (Figure 11 columns).
func (t *Trace) Counts() (refs, updates int) {
	for _, r := range t.Records {
		refs++
		if r.Op.IsUpdate() {
			updates++
		}
	}
	return refs, updates
}

// Slice returns the sub-trace covering [from, to), with times rebased to
// from.
func (t *Trace) Slice(from, to time.Duration) *Trace {
	out := &Trace{Name: t.Name, Manifest: t.Manifest, Volume: t.Volume}
	for _, r := range t.Records {
		if r.T < from || r.T >= to {
			continue
		}
		r.T -= from
		out.Records = append(out.Records, r)
	}
	return out
}
