package trace

import (
	"math"
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SegmentPreset("Purcell", 0))
	b := Generate(SegmentPreset("Purcell", 0))
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c := Generate(SegmentPreset("Purcell", 1))
	same := len(a.Records) == len(c.Records)
	if same {
		identical := true
		for i := range a.Records {
			if a.Records[i] != c.Records[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGenerateSpansDuration(t *testing.T) {
	tr := Generate(SegmentPreset("Holst", 0))
	d := tr.Duration()
	if d < 44*time.Minute || d > 46*time.Minute {
		t.Errorf("duration = %v, want ~45m", d)
	}
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i].T < tr.Records[i-1].T {
			t.Fatal("records out of temporal order")
		}
	}
}

// The headline calibration test: the four Figure 11 presets must land near
// the paper's published segment statistics.
func TestSegmentPresetsMatchFigure11(t *testing.T) {
	want := map[string]struct {
		refs, updates   int
		unoptKB         int
		compressibility float64
	}{
		"Purcell":  {51681, 519, 2864, 0.08},
		"Holst":    {61019, 596, 3402, 0.32},
		"Messiaen": {38342, 188, 6996, 0.69},
		"Concord":  {160397, 1273, 34704, 0.94},
	}
	for _, name := range SegmentNames {
		tr := Generate(SegmentPreset(name, 0))
		refs, updates := tr.Counts()
		an := AnalyzeCML(tr, NoAging)
		w := want[name]

		if ratio := float64(refs) / float64(w.refs); ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: refs = %d, paper %d", name, refs, w.refs)
		}
		if ratio := float64(updates) / float64(w.updates); ratio < 0.7 || ratio > 1.4 {
			t.Errorf("%s: updates = %d, paper %d", name, updates, w.updates)
		}
		gotKB := int(an.AppendedBytes / 1024)
		if ratio := float64(gotKB) / float64(w.unoptKB); ratio < 0.6 || ratio > 1.7 {
			t.Errorf("%s: unoptimized CML = %d KB, paper %d KB", name, gotKB, w.unoptKB)
		}
		if got := an.Compressibility(); math.Abs(got-w.compressibility) > 0.10 {
			t.Errorf("%s: compressibility = %.2f, paper %.2f", name, got, w.compressibility)
		}
		t.Logf("%-9s refs=%6d updates=%5d unopt=%6dKB compress=%4.0f%%",
			name, refs, updates, gotKB, an.Compressibility()*100)
	}
}

// Aging monotonicity: a larger window can only increase savings; the curve
// is the substance of Figure 4.
func TestAgingMonotonicity(t *testing.T) {
	tr := Generate(WeekPreset("holst", 0))
	prev := int64(-1)
	for _, a := range []time.Duration{
		10 * time.Second, 100 * time.Second, 300 * time.Second,
		600 * time.Second, time.Hour, 4 * time.Hour,
	} {
		an := AnalyzeCML(tr, a)
		if an.SavedBytes < prev {
			t.Errorf("savings decreased at A=%v: %d < %d", a, an.SavedBytes, prev)
		}
		prev = an.SavedBytes
		// Conservation: everything appended is saved, drained, or left.
		if an.SavedBytes+an.DrainedBytes+an.FinalBytes != an.AppendedBytes {
			t.Errorf("A=%v: %d+%d+%d != %d", a, an.SavedBytes, an.DrainedBytes, an.FinalBytes, an.AppendedBytes)
		}
	}
}

// The week presets must spread as in Figure 4: at A=600 s every trace
// reaches ≥ ~40 % of its 4-hour savings, while at A=300 s the slowest
// traces are well below the fastest.
func TestWeekPresetsSpreadLikeFigure4(t *testing.T) {
	ratioAt := func(name string, a time.Duration) float64 {
		tr := Generate(WeekPreset(name, 0))
		base := AnalyzeCML(tr, 4*time.Hour).SavedBytes
		if base == 0 {
			t.Fatalf("%s: no savings at 4h", name)
		}
		return float64(AnalyzeCML(tr, a).SavedBytes) / float64(base)
	}
	lo, hi := 2.0, 0.0
	for _, name := range WeekNames {
		r300 := ratioAt(name, 300*time.Second)
		r600 := ratioAt(name, 600*time.Second)
		t.Logf("%-9s A=300s: %3.0f%%  A=600s: %3.0f%%", name, r300*100, r600*100)
		if r600 < 0.35 {
			t.Errorf("%s: only %.0f%% at A=600s; paper has ~≥50%% on all traces", name, r600*100)
		}
		if r300 < lo {
			lo = r300
		}
		if r300 > hi {
			hi = r300
		}
	}
	if hi-lo < 0.25 {
		t.Errorf("A=300s spread [%.2f, %.2f] too narrow; Figure 4 shows wide variation", lo, hi)
	}
}

func TestSliceRebasing(t *testing.T) {
	tr := Generate(SegmentPreset("Purcell", 0))
	mid := tr.Duration() / 2
	s := tr.Slice(mid, tr.Duration()+1)
	if len(s.Records) == 0 {
		t.Fatal("empty slice")
	}
	if s.Records[0].T > tr.Duration()/2 {
		t.Error("slice not rebased")
	}
	refsA, _ := tr.Counts()
	refsB, _ := s.Counts()
	if refsB >= refsA {
		t.Error("slice did not shrink")
	}
}

func TestAnalyzeTempFilesFullyCancelled(t *testing.T) {
	tr := &Trace{
		Volume:   "usr",
		Manifest: map[string]int{},
		Records: []Record{
			{T: 0, Op: OpWrite, Path: "/coda/usr/d/tmp1", Size: 10000},
			{T: time.Second, Op: OpRemove, Path: "/coda/usr/d/tmp1"},
		},
	}
	an := AnalyzeCML(tr, NoAging)
	if an.FinalBytes != 0 {
		t.Errorf("FinalBytes = %d, want 0 (create+store+remove all cancelled)", an.FinalBytes)
	}
	if an.SavedBytes != an.AppendedBytes {
		t.Errorf("saved %d != appended %d", an.SavedBytes, an.AppendedBytes)
	}
}

func TestAnalyzeAgingProtectsDrainedRecords(t *testing.T) {
	// Two writes 10 minutes apart: with a 1-minute window, the first is
	// drained before the second arrives, so nothing is saved.
	tr := &Trace{
		Volume:   "usr",
		Manifest: map[string]int{"/coda/usr/f": 100},
		Records: []Record{
			{T: 0, Op: OpWrite, Path: "/coda/usr/f", Size: 5000},
			{T: 10 * time.Minute, Op: OpWrite, Path: "/coda/usr/f", Size: 5000},
		},
	}
	if an := AnalyzeCML(tr, time.Minute); an.SavedBytes != 0 {
		t.Errorf("A=1m: saved %d, want 0", an.SavedBytes)
	}
	if an := AnalyzeCML(tr, time.Hour); an.SavedBytes == 0 {
		t.Error("A=1h: nothing saved, want the first store cancelled")
	}
}

func TestOpStringsAndUpdateClass(t *testing.T) {
	if !OpWrite.IsUpdate() || OpRead.IsUpdate() || OpStat.IsUpdate() {
		t.Error("IsUpdate misclassifies")
	}
	if OpWrite.String() != "write" || OpRead.String() != "read" {
		t.Error("Op strings wrong")
	}
}
