package group

import (
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/venus"
)

// TestDivergenceCounter forces real divergence — two members accept
// different log entries at the same LSN during a full partition — and
// requires that anti-entropy reports it loudly AND that the
// group_divergence_total counter fires at the detecting member. The
// counter matters because divergence errors cross the wire as opaque
// strings: only the local hook sees the typed ErrDiverged.
func TestDivergenceCounter(t *testing.T) {
	sim := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(sim, 11)
	net.SetDefaults(netsim.Ethernet.Params())
	reg := obs.NewRegistry(sim)
	conns := []netsim.PacketConn{net.Host("pair0"), net.Host("pair1")}
	grp, err := New(sim, conns, WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grp.CreateVolume("work"); err != nil {
		t.Fatal(err)
	}

	sim.Run(func() {
		v := venus.New(sim, net.Host("laptop"), venus.Config{
			Servers:  grp.Addrs(),
			ClientID: 1,
		})
		if err := v.Mount("work"); err != nil {
			t.Fatal(err)
		}

		// Partition pair1 from everyone: two writes land only on pair0
		// (LSNs 1 and 2 there), and the ships to pair1 are lost. pair0
		// must end AHEAD of pair1 so the later pull has a suffix to
		// serve — FetchLog only compares chains when one exists.
		net.SetUp("laptop", "pair1", false)
		net.SetUp("pair0", "pair1", false)
		if err := v.WriteFile("/coda/work/a.txt", []byte("landed on pair0")); err != nil {
			t.Fatal(err)
		}
		if err := v.WriteFile("/coda/work/a2.txt", []byte("also pair0")); err != nil {
			t.Fatal(err)
		}

		// Flip the partition: now only pair1 is reachable, so the second
		// write lands there as a DIFFERENT LSN 1. The logs now disagree.
		net.SetUp("laptop", "pair1", true)
		net.SetUp("laptop", "pair0", false)
		if err := v.WriteFile("/coda/work/b.txt", []byte("landed on pair1")); err != nil {
			t.Fatal(err)
		}

		// Heal everything and run anti-entropy. pair0 serves the pull,
		// sees the chain mismatch at LSN 1, and must refuse.
		net.SetUp("laptop", "pair0", true)
		net.SetUp("pair0", "pair1", true)
		sim.Sleep(time.Second)
		err := grp.Member(1).CatchUp(grp.Addrs()[0])
		if err == nil {
			t.Fatal("CatchUp across diverged replicas succeeded, want divergence error")
		}
		if !strings.Contains(err.Error(), "replica diverged") {
			t.Fatalf("CatchUp error = %v, want a replica-diverged report", err)
		}
		// The typed sentinel is only visible on the detecting side; the
		// counter is how the event is observable at all from here.
		if n := reg.Counter("group_divergence_total", obs.L("node", "pair0")).Value(); n < 1 {
			t.Errorf("group_divergence_total{node=pair0} = %d, want >= 1", n)
		}
		if !strings.Contains(string(reg.Dump()), "group_divergence_total") {
			t.Error("registry dump does not carry group_divergence_total")
		}
	})
}
