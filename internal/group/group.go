// Package group assembles server.Server replicas into replicated volume
// storage groups — the paper's VSGs (§2: "volumes … stored at a group of
// servers"), scaled out with a placement map so a deployment can run many
// groups side by side.
//
// A Group is N servers that each hold every volume the group carries.
// Members push committed log entries to each other (ShipLog) and pull
// missed suffixes after a restart (FetchLog); the group layer itself
// stays out of the data path — it only constructs members with the right
// peer wiring, mirrors administrative operations (volume creation,
// seeding) across them, and exposes replica-lag observability. Clients
// talk to members directly and fail over between them (internal/venus).
//
// Placement maps volume names onto groups deterministically, so every
// client and tool resolves a volume to the same group without a
// directory service — the precursor to real sharding (ROADMAP item 5).
package group

import (
	"fmt"
	"hash/fnv"

	"repro/internal/codafs"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/simtime"
)

// Group is a set of server replicas that carry the same volumes.
type Group struct {
	clock   simtime.Clock
	addrs   []string
	servers []*server.Server
	reg     *obs.Registry
}

// Option configures a Group at construction.
type Option func(*Group)

// WithObs injects the observability registry every member (and the
// group's own lag gauges) registers metrics with.
func WithObs(reg *obs.Registry) Option {
	return func(g *Group) { g.reg = reg }
}

// New builds a group with one member per connection, each configured to
// push committed log entries to all the others. Member i listens on
// conns[i]; the member order is the group's canonical order (clients
// derive per-volume preferred members from it).
func New(clock simtime.Clock, conns []netsim.PacketConn, opts ...Option) (*Group, error) {
	if len(conns) == 0 {
		return nil, fmt.Errorf("group: need at least one member")
	}
	g := &Group{clock: clock}
	for _, o := range opts {
		o(g)
	}
	for _, c := range conns {
		g.addrs = append(g.addrs, c.LocalAddr())
	}
	for i, c := range conns {
		g.servers = append(g.servers, server.New(clock, c, g.MemberOptions(i)...))
	}
	if g.reg != nil {
		for i := range g.servers {
			srv := g.servers[i]
			node := obs.L("node", g.addrs[i])
			g.reg.GaugeFunc("group_replica_lag_entries", func() int64 {
				return g.lagOf(srv)
			}, node)
		}
	}
	return g, nil
}

// MemberOptions returns the construction options member i was (and any
// replacement must be) built with: the peer wiring, the registry, and
// the hook that surfaces replica divergence as the
// group_divergence_total counter, labeled by node. Counter registration
// is idempotent, so a replacement increments the same series the
// original did.
func (g *Group) MemberOptions(i int) []server.Option {
	sopts := []server.Option{server.WithPeers(g.PeerAddrs(i)...)}
	if g.reg != nil {
		c := g.reg.Counter("group_divergence_total", obs.L("node", g.addrs[i]))
		sopts = append(sopts,
			server.WithObs(g.reg),
			server.WithDivergenceHook(c.Inc))
	}
	return sopts
}

// Len returns the member count.
func (g *Group) Len() int { return len(g.servers) }

// Addrs returns the members' addresses in canonical order.
func (g *Group) Addrs() []string { return append([]string(nil), g.addrs...) }

// Servers returns the members in canonical order.
func (g *Group) Servers() []*server.Server {
	return append([]*server.Server(nil), g.servers...)
}

// Member returns member i.
func (g *Group) Member(i int) *server.Server { return g.servers[i] }

// PeerAddrs returns every member address except member i's — the peer
// list a member (or its replacement after a crash) is constructed with.
func (g *Group) PeerAddrs(i int) []string {
	peers := make([]string, 0, len(g.addrs)-1)
	for j, a := range g.addrs {
		if j != i {
			peers = append(peers, a)
		}
	}
	return peers
}

// ReplaceMember installs a new server as member i — how a crashed
// member, recovered into a fresh process (server.New + AttachJournal),
// rejoins its group. The replacement should have been built with
// PeerAddrs(i) and must listen on the same address.
func (g *Group) ReplaceMember(i int, srv *server.Server) error {
	if srv.Addr() != g.addrs[i] {
		return fmt.Errorf("group: replacement for member %d listens on %q, want %q",
			i, srv.Addr(), g.addrs[i])
	}
	g.servers[i] = srv
	return nil
}

// Each runs fn on every member in canonical order, stopping at the
// first error. Administrative mutations must go through Each (or the
// helpers below) so members stay identical.
func (g *Group) Each(fn func(*server.Server) error) error {
	for i, s := range g.servers {
		if err := fn(s); err != nil {
			return fmt.Errorf("group: member %d (%s): %w", i, g.addrs[i], err)
		}
	}
	return nil
}

// CreateVolume creates the volume on every member. Members assign IDs
// deterministically, so the same creation order yields the same ID
// everywhere; a mismatch means the members have diverged and is an error.
func (g *Group) CreateVolume(name string) (codafs.VolumeInfo, error) {
	var info codafs.VolumeInfo
	for i, s := range g.servers {
		vi, err := s.CreateVolume(name)
		if err != nil {
			return codafs.VolumeInfo{}, fmt.Errorf("group: member %d (%s): %w", i, g.addrs[i], err)
		}
		if i == 0 {
			info = vi
		} else if vi.ID != info.ID {
			return codafs.VolumeInfo{}, fmt.Errorf(
				"group: volume %q got ID %d on member %d, %d on member 0", name, vi.ID, i, info.ID)
		}
	}
	return info, nil
}

// WriteFile seeds a file identically on every member (administrative
// writes bypass the replicated log, so the group mirrors them).
func (g *Group) WriteFile(volName, relPath string, data []byte) error {
	return g.Each(func(s *server.Server) error {
		_, err := s.WriteFile(volName, relPath, data)
		return err
	})
}

// MakeDir seeds a directory identically on every member.
func (g *Group) MakeDir(volName, relPath string) error {
	return g.Each(func(s *server.Server) error {
		_, err := s.MakeDir(volName, relPath)
		return err
	})
}

// Close shuts down every member.
func (g *Group) Close() {
	for _, s := range g.servers {
		s.Close()
	}
}

// lagOf reports how many log entries srv is behind the most advanced
// member, maximized over volumes — the group_replica_lag_entries gauge.
func (g *Group) lagOf(srv *server.Server) int64 {
	head := make(map[codafs.VolumeID]uint64)
	for _, s := range g.servers {
		for _, p := range s.VolumePositions() {
			if p.LSN > head[p.ID] {
				head[p.ID] = p.LSN
			}
		}
	}
	var lag uint64
	for _, p := range srv.VolumePositions() {
		if h := head[p.ID]; h > p.LSN && h-p.LSN > lag {
			lag = h - p.LSN
		}
	}
	return int64(lag)
}

// Placement deterministically maps volume names onto groups: explicit
// pins win, everything else hashes. Every process that constructs the
// same Placement resolves volumes identically.
type Placement struct {
	groups []*Group
	pinned map[string]int
}

// NewPlacement builds a placement over the given groups in order.
func NewPlacement(groups ...*Group) *Placement {
	return &Placement{groups: groups, pinned: make(map[string]int)}
}

// Pin assigns a volume to a specific group index, overriding the hash.
func (p *Placement) Pin(volume string, group int) error {
	if group < 0 || group >= len(p.groups) {
		return fmt.Errorf("group: pin %q to group %d of %d", volume, group, len(p.groups))
	}
	p.pinned[volume] = group
	return nil
}

// GroupFor resolves the group that carries a volume.
func (p *Placement) GroupFor(volume string) *Group {
	return p.groups[p.IndexFor(volume)]
}

// IndexFor resolves the group index for a volume: its pin if present,
// otherwise an FNV-1a hash of the name modulo the group count.
func (p *Placement) IndexFor(volume string) int {
	if i, ok := p.pinned[volume]; ok {
		return i
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(volume))
	return int(h.Sum32() % uint32(len(p.groups)))
}

// Groups returns the placement's groups in order.
func (p *Placement) Groups() []*Group {
	return append([]*Group(nil), p.groups...)
}
