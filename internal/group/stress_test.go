package group

import (
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/crashfs"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/venus"
)

// TestStressCheckpointDuringReintegration is the lockorder analyzer's
// dynamic twin: while a client drains multi-volume reintegration
// batches through a 3-replica group, every member is hammered with
// concurrent Checkpoint and SaveState calls. That drives the full
// documented hierarchy — Server.mu -> volume.mu -> sjMu -> WAL.mu on
// the servers, drainMu -> Venus.mu -> journal.mu on the client — from
// many goroutines at once. Run under -race it doubles as the data-race
// fence; a lock-order violation shows up as the sim failing to drain
// within the sim-time budget (or as go test's own timeout if the whole
// event loop wedges).
func TestStressCheckpointDuringReintegration(t *testing.T) {
	const (
		V = 3 // volumes reintegrating in the same window
		R = 4 // disconnect -> write -> reconnect rounds
		K = 3 // files per volume per round
	)
	sim := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(sim, 7)
	net.SetDefaults(netsim.Ethernet.Params())
	conns := []netsim.PacketConn{net.Host("srv0"), net.Host("srv1"), net.Host("srv2")}
	grp, err := New(sim, conns)
	if err != nil {
		t.Fatal(err)
	}
	// Journals on every member so checkpoints exercise the sjMu/WAL.mu
	// layers, not just the in-memory snapshot path.
	for i := 0; i < grp.Len(); i++ {
		if _, err := grp.Member(i).AttachJournal(journalOpts(crashfs.NewMem())); err != nil {
			t.Fatal(err)
		}
	}
	vols := make([]string, V)
	for i := range vols {
		vols[i] = fmt.Sprintf("work%d", i)
		if _, err := grp.CreateVolume(vols[i]); err != nil {
			t.Fatal(err)
		}
	}

	var done atomic.Bool
	var checkpoints atomic.Int64
	sim.Run(func() {
		// One hammer per member, running for the whole client session:
		// checkpoint (journal truncation under every volume lock) and a
		// full state snapshot, back to back, on a cadence deliberately
		// out of phase with the client's 1s trickle interval.
		for i := 0; i < grp.Len(); i++ {
			srv := grp.Member(i)
			sim.Go(func() {
				for !done.Load() {
					if err := srv.Checkpoint(); err != nil {
						t.Errorf("checkpoint: %v", err)
						return
					}
					if err := srv.SaveState(io.Discard); err != nil {
						t.Errorf("save state: %v", err)
						return
					}
					checkpoints.Add(1)
					sim.Sleep(700 * time.Millisecond)
				}
			})
		}

		v := venus.New(sim, net.Host("laptop"), venus.Config{
			Servers:         grp.Addrs(),
			ClientID:        1,
			AgingWindow:     time.Second,
			TrickleInterval: time.Second,
		})
		for _, name := range vols {
			if err := v.Mount(name); err != nil {
				t.Errorf("mount %s: %v", name, err)
				done.Store(true)
				return
			}
		}

		for r := 0; r < R; r++ {
			v.Disconnect()
			for _, name := range vols {
				for k := 0; k < K; k++ {
					path := fmt.Sprintf("/coda/%s/r%df%d.txt", name, r, k)
					if err := v.WriteFile(path, []byte(fmt.Sprintf("%s draft %d.%d", name, r, k))); err != nil {
						t.Errorf("write %s: %v", path, err)
						done.Store(true)
						return
					}
				}
			}
			v.Connect(0)
			// The drain budget is the deadlock detector: if any server
			// wedges holding a lock the reintegration path needs, the CML
			// never empties and sim-time blows through the deadline.
			deadline := sim.Now().Add(30 * time.Minute)
			for v.CMLRecords() > 0 && sim.Now().Before(deadline) {
				sim.Sleep(5 * time.Second)
			}
			if n := v.CMLRecords(); n != 0 {
				t.Errorf("round %d: CML still holds %d records after 30m of sim-time — reintegration wedged against the checkpoint hammer", r, n)
				done.Store(true)
				return
			}
		}
		done.Store(true)
	})

	if checkpoints.Load() == 0 {
		t.Fatal("checkpoint hammer never ran; the stress test exercised nothing")
	}
	// The batches must have landed, not just drained: the final round's
	// files readable from every member with the written bytes.
	for _, name := range vols {
		for k := 0; k < K; k++ {
			rel := fmt.Sprintf("r%df%d.txt", R-1, k)
			want := fmt.Sprintf("%s draft %d.%d", name, R-1, k)
			for i := 0; i < grp.Len(); i++ {
				got, err := grp.Member(i).ReadFile(name, rel)
				if err != nil {
					t.Fatalf("member %d read back %s/%s: %v", i, name, rel, err)
				}
				if string(got) != want {
					t.Fatalf("member %d %s/%s: got %q, want %q", i, name, rel, got, want)
				}
			}
		}
	}
}
