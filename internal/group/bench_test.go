package group

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/venus"
)

// BenchmarkReplicatedReintegrate measures one full disconnected
// write/reintegrate cycle against a three-member group on simulated
// Ethernet: the client logs K files, reconnects, and drains its CML
// through the preferred member, which ships every entry to both peers.
// The sim is deterministic, so at a fixed -benchtime iteration count the
// allocation numbers are stable and benchgate pins them (the baseline's
// guard against replication bloating the reintegration path).
func BenchmarkReplicatedReintegrate(b *testing.B) {
	const K = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := simtime.NewSim(simtime.Epoch1995)
		net := netsim.New(sim, 11)
		net.SetDefaults(netsim.Ethernet.Params())
		conns := []netsim.PacketConn{net.Host("s0"), net.Host("s1"), net.Host("s2")}
		grp, err := New(sim, conns)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := grp.CreateVolume("work"); err != nil {
			b.Fatal(err)
		}
		sim.Run(func() {
			v := venus.New(sim, net.Host("laptop"), venus.Config{
				Servers:         grp.Addrs(),
				ClientID:        1,
				AgingWindow:     time.Second,
				TrickleInterval: time.Second,
			})
			if err := v.Mount("work"); err != nil {
				b.Fatal(err)
			}
			v.Disconnect()
			for k := 0; k < K; k++ {
				if err := v.WriteFile(fmt.Sprintf("/coda/work/f%d.txt", k),
					[]byte(fmt.Sprintf("draft %d", k))); err != nil {
					b.Fatal(err)
				}
			}
			v.Connect(0)
			deadline := sim.Now().Add(10 * time.Minute)
			for v.CMLRecords() > 0 && sim.Now().Before(deadline) {
				sim.Sleep(time.Second)
			}
			if n := v.CMLRecords(); n != 0 {
				b.Fatalf("CML still holds %d records", n)
			}
		})
		grp.Close()
	}
}
