package group

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/crashfs"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/venus"
	"repro/internal/wal"
)

func journalOpts(mem *crashfs.Mem) server.JournalOptions {
	return server.JournalOptions{FS: mem, Dir: "sj", Policy: wal.SyncEachRecord}
}

// replicaCrashScenario runs the kill-1-of-3 experiment with a power cut
// armed at the crashAt-th journal write on the client's preferred member
// (0 = never crash). A client reintegrates a disconnected batch; the
// victim's journal dies under it, the client fails over without
// surfacing an error, the victim reboots from its surviving journal
// prefix, pulls the suffix it missed via FetchLog, and the group ends
// byte-identical. Returns the victim's journal write count for the
// sweep's bounds.
func replicaCrashScenario(t *testing.T, crashAt int) int {
	t.Helper()
	const (
		R = 3 // disconnect→write→reintegrate rounds (journal batches)
		K = 2 // files per round
	)
	sim := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(sim, 5)
	net.SetDefaults(netsim.Ethernet.Params())
	conns := []netsim.PacketConn{net.Host("srv0"), net.Host("srv1"), net.Host("srv2")}
	grp, err := New(sim, conns)
	if err != nil {
		t.Fatal(err)
	}

	// Every member journals, so whichever member turns out to be the
	// client's preferred one has a journal to crash and recover from.
	mems := make([]*crashfs.Mem, grp.Len())
	for i := range mems {
		mems[i] = crashfs.NewMem()
		if _, err := grp.Member(i).AttachJournal(journalOpts(mems[i])); err != nil {
			t.Fatal(err)
		}
	}
	info, err := grp.CreateVolume("work")
	if err != nil {
		t.Fatal(err)
	}
	victim := int(uint64(info.ID) % uint64(grp.Len()))
	victimAddr := grp.Addrs()[victim]
	// ArmCrash counts writes from now, so the sweep bound is the number of
	// journal writes the scenario performs after this point, not the total.
	preWrites := mems[victim].Writes()
	if crashAt > 0 {
		mems[victim].ArmCrash(crashAt, 0)
	}

	var writes int
	sim.Run(func() {
		v := venus.New(sim, net.Host("laptop"), venus.Config{
			Servers:         grp.Addrs(),
			ClientID:        1,
			AgingWindow:     time.Second,
			TrickleInterval: time.Second,
		})
		if err := v.Mount("work"); err != nil {
			t.Fatal(err)
		}

		// R disconnected batches, reintegrated one at a time — each is
		// one journal write at whichever member receives it, so the sweep
		// can cut the power under any of them. The client must drain every
		// round without an operation surfacing an error: failover is
		// Venus's job, not the caller's.
		for r := 0; r < R; r++ {
			v.Disconnect()
			for k := 0; k < K; k++ {
				if err := v.WriteFile(fmt.Sprintf("/coda/work/r%df%d.txt", r, k),
					[]byte(fmt.Sprintf("draft %d.%d", r, k))); err != nil {
					t.Fatal(err)
				}
			}
			v.Connect(0)
			deadline := sim.Now().Add(30 * time.Minute)
			for v.CMLRecords() > 0 && sim.Now().Before(deadline) {
				sim.Sleep(5 * time.Second)
			}
			if n := v.CMLRecords(); n != 0 {
				t.Fatalf("crashAt=%d round %d: CML still holds %d records", crashAt, r, n)
			}
		}
		writes = mems[victim].Writes() - preWrites

		if crashAt > 0 {
			if v.Stats().Failovers == 0 {
				t.Errorf("crashAt=%d: no failover despite the victim's journal dying", crashAt)
			}
			// Power-cycle the victim: the dead process leaves the
			// address, the journal reboots with only its durable prefix,
			// and a fresh server recovers from it.
			grp.Member(victim).Close()
			mems[victim].Reboot()
			fresh := server.New(sim, net.Host(victimAddr), server.WithPeers(grp.PeerAddrs(victim)...))
			if _, err := fresh.AttachJournal(journalOpts(mems[victim])); err != nil {
				t.Fatalf("crashAt=%d: recovery: %v", crashAt, err)
			}
			// Volumes are re-created at boot (cmd/codasrv does the same)
			// in case the creation itself was lost with the crash.
			if _, err := fresh.VolumeStamp("work"); err != nil {
				if _, err := fresh.CreateVolume("work"); err != nil {
					t.Fatalf("crashAt=%d: recreate volume: %v", crashAt, err)
				}
			}
			if err := grp.ReplaceMember(victim, fresh); err != nil {
				t.Fatal(err)
			}
		}

		// Anti-entropy: everyone pulls from the most advanced member
		// (the replacement needs it; survivors may also have missed a
		// push while the victim was failing mid-ship).
		best, bestLSN := 0, uint64(0)
		for i := 0; i < grp.Len(); i++ {
			if lsn, _, err := grp.Member(i).VolumeLSN("work"); err == nil && lsn >= bestLSN {
				best, bestLSN = i, lsn
			}
		}
		for i := 0; i < grp.Len(); i++ {
			if i == best {
				continue
			}
			if err := grp.Member(i).CatchUp(grp.Addrs()[best]); err != nil {
				t.Fatalf("crashAt=%d: member %d catch-up from %d: %v", crashAt, i, best, err)
			}
		}
		sim.Sleep(5 * time.Second)

		// Convergence: byte-identical state, files present everywhere.
		var img0 bytes.Buffer
		if err := grp.Member(0).SaveState(&img0); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < grp.Len(); i++ {
			var img bytes.Buffer
			if err := grp.Member(i).SaveState(&img); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(img0.Bytes(), img.Bytes()) {
				t.Errorf("crashAt=%d: member %d diverged from member 0", crashAt, i)
			}
		}
		for r := 0; r < R; r++ {
			for k := 0; k < K; k++ {
				rel := fmt.Sprintf("r%df%d.txt", r, k)
				for i := 0; i < grp.Len(); i++ {
					got, err := grp.Member(i).ReadFile("work", rel)
					if err != nil || string(got) != fmt.Sprintf("draft %d.%d", r, k) {
						t.Errorf("crashAt=%d: member %d %s = %q, %v", crashAt, i, rel, got, err)
					}
				}
			}
		}
	})
	return writes
}

// TestGroupReplicaCrashMidReintegrationRecovery sweeps a power cut
// across every journal write the client's preferred member performs
// during the scenario — before, during, and after it journals the
// reintegrated batch — and requires, at every cut point: the client
// drains its CML with no error surfacing (failover), the rebooted
// victim catches up via FetchLog, and all three members end
// byte-identical.
func TestGroupReplicaCrashMidReintegrationRecovery(t *testing.T) {
	// Baseline run with no crash fixes the sweep's upper bound.
	writes := replicaCrashScenario(t, 0)
	if writes == 0 {
		t.Fatal("baseline run performed no journal writes; sweep is vacuous")
	}
	if t.Failed() {
		t.Fatal("baseline run failed; not sweeping")
	}
	for crashAt := 1; crashAt <= writes; crashAt++ {
		replicaCrashScenario(t, crashAt)
		if t.Failed() {
			t.Fatalf("stopping sweep at crashAt=%d", crashAt)
		}
	}
}
