// Package wal implements a generic segmented write-ahead log — the
// reproduction's substitute for the recoverable virtual memory (RVM)
// that backs the CML in real Coda (§4.3.1). Venus and the server journal
// their mutations through it so that a crash at any instant loses
// nothing that was acknowledged, and recovery is snapshot + replay.
//
// On-disk format: each segment file is a sequence of frames
//
//	uint32 LE payload length | uint32 LE CRC-32C(payload) | payload
//
// Segments rotate at a size threshold and are named wal-%016x.seg so a
// lexical sort is the append order. Recovery scans the segments in
// order, hands every intact payload to a caller-supplied apply
// function, and truncates the log at the first bad frame — a torn tail
// from a crash mid-write is cut off, never replayed.
//
// Durability is governed by a pluggable fsync policy: SyncEachRecord
// (every append is durable before it returns), SyncInterval (appends
// are synced when older than a flush window measured on the injected
// simtime clock, mirroring Coda's ~30 s RVM flush), or SyncNone
// (checkpoint-only durability). Checkpoints are the caller's gob
// snapshots; after a snapshot is durable, Reset truncates the dead
// segments.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/crashfs"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// SyncPolicy selects when appended records are forced to stable
// storage.
type SyncPolicy int

const (
	// SyncEachRecord syncs the segment after every append. Nothing
	// acknowledged is ever lost; this is the policy the crash matrix
	// assumes when it equates completed operations with durable ones.
	SyncEachRecord SyncPolicy = iota
	// SyncInterval syncs an append only when the previous sync is older
	// than Interval on the injected clock — Coda's RVM flush window: a
	// bounded amount of recent work may be lost, in exchange for far
	// fewer fsyncs on a laptop disk.
	SyncInterval
	// SyncNone never syncs on append; durability comes only from
	// checkpoints (and whatever the OS writes back on its own).
	SyncNone
)

// Options parameterizes Open.
type Options struct {
	// FS is the filesystem the log lives on (crashfs.OS in production,
	// crashfs.Mem under fault injection).
	FS crashfs.FS
	// Dir is the directory holding the segment files.
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this
	// size. Default 1 MiB.
	SegmentBytes int64
	// Policy is the fsync policy. Default SyncEachRecord.
	Policy SyncPolicy
	// Interval is the SyncInterval flush window. Default 30 s (the RVM
	// flush window of §4.3.1).
	Interval time.Duration
	// Clock drives the SyncInterval policy. It must be injected — the
	// log itself never touches the real clock — and is required only
	// for SyncInterval.
	Clock simtime.Clock
	// Obs receives the log's counters (nil: no observability). Counters
	// are aggregate across all WALs sharing a registry: the registry
	// hands every Open the same handles.
	Obs *obs.Registry
	// Node is the span node label AppendSpan records wal_append and
	// wal_fsync spans under (the owning process's address). Only needed
	// when traced appends are expected.
	Node string
}

// RecoveryStats describes what Open found.
type RecoveryStats struct {
	// Records is the number of intact records replayed.
	Records int
	// Segments is the number of segment files scanned.
	Segments int
	// TornBytes is how many trailing bytes were truncated at the first
	// bad frame (0 for a clean log).
	TornBytes int64
	// TornSegments is how many segment files were dropped entirely
	// because they followed the torn point.
	TornSegments int
}

// maxPayload bounds a frame so a corrupt length field cannot demand an
// absurd allocation during recovery.
const maxPayload = 64 << 20

const (
	frameHeader = 8 // length + CRC
	segPrefix   = "wal-"
	segSuffix   = ".seg"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WAL is an open write-ahead log positioned to append.
type WAL struct {
	opts Options
	met  walMetrics

	mu       sync.Mutex
	seg      crashfs.File // active segment (append handle)
	segIdx   uint64       // index of the active segment
	segSize  int64
	lastSync time.Time // SyncInterval bookkeeping
	dirty    bool      // unsynced appends pending
	scratch  []byte    // frame buffer reused across appends (mu serializes them)
}

// walMetrics holds the log's obs handles; all nil (inert) without
// Options.Obs.
type walMetrics struct {
	appends     *obs.Counter
	appendBytes *obs.Counter
	fsyncs      *obs.Counter
	replayed    *obs.Counter
	tornTruncs  *obs.Counter
	tornBytes   *obs.Counter
}

func newWALMetrics(reg *obs.Registry) walMetrics {
	return walMetrics{
		appends:     reg.Counter("wal_appends_total"),
		appendBytes: reg.Counter("wal_append_bytes_total"),
		fsyncs:      reg.Counter("wal_fsyncs_total"),
		replayed:    reg.Counter("wal_replay_records_total"),
		tornTruncs:  reg.Counter("wal_torn_truncations_total"),
		tornBytes:   reg.Counter("wal_torn_bytes_total"),
	}
}

func segName(idx uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, idx, segSuffix) }

func parseSegName(name string) (uint64, bool) {
	if len(name) != len(segPrefix)+16+len(segSuffix) ||
		name[:len(segPrefix)] != segPrefix || name[len(name)-len(segSuffix):] != segSuffix {
		return 0, false
	}
	var idx uint64
	if _, err := fmt.Sscanf(name[len(segPrefix):len(segPrefix)+16], "%016x", &idx); err != nil {
		return 0, false
	}
	return idx, true
}

// Open recovers the log in opts.Dir, replaying every intact record into
// apply in append order, truncating the log at the first bad frame, and
// returns a WAL positioned to append after the last intact record. An
// apply error aborts recovery and is returned.
func Open(opts Options, apply func(payload []byte) error) (*WAL, RecoveryStats, error) {
	if opts.FS == nil || opts.Dir == "" {
		return nil, RecoveryStats{}, errors.New("wal: Options.FS and Options.Dir are required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 1 << 20
	}
	if opts.Interval <= 0 {
		opts.Interval = 30 * time.Second
	}
	if opts.Policy == SyncInterval && opts.Clock == nil {
		return nil, RecoveryStats{}, errors.New("wal: SyncInterval requires an injected Clock")
	}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, RecoveryStats{}, fmt.Errorf("wal: mkdir %s: %w", opts.Dir, err)
	}

	w := &WAL{opts: opts, met: newWALMetrics(opts.Obs)}
	stats, err := w.recover(apply)
	if err != nil {
		return nil, stats, err
	}
	w.met.replayed.Add(int64(stats.Records))
	w.met.tornBytes.Add(stats.TornBytes)
	if stats.TornBytes > 0 || stats.TornSegments > 0 {
		w.met.tornTruncs.Inc()
	}
	if w.opts.Policy == SyncInterval {
		w.lastSync = w.opts.Clock.Now()
	}
	return w, stats, nil
}

// recover scans the segments, replays intact frames, truncates the torn
// tail, and leaves w.seg open for appending.
func (w *WAL) recover(apply func([]byte) error) (RecoveryStats, error) {
	var stats RecoveryStats
	names, err := w.opts.FS.ReadDir(w.opts.Dir)
	if err != nil {
		return stats, fmt.Errorf("wal: list %s: %w", w.opts.Dir, err)
	}
	var segs []uint64
	for _, name := range names {
		if idx, ok := parseSegName(name); ok {
			segs = append(segs, idx)
		}
	}
	// ReadDir returns sorted names and the fixed-width hex encoding
	// makes lexical order numeric order, so segs is ascending.

	if len(segs) == 0 {
		if err := w.startSegment(1); err != nil {
			return stats, err
		}
		return stats, nil
	}

	torn := false
	var lastIdx uint64
	var lastSize int64
	for _, idx := range segs {
		path := w.segPath(idx)
		if torn {
			// Everything after the torn point is unreachable garbage.
			if err := w.opts.FS.Remove(path); err != nil {
				return stats, fmt.Errorf("wal: drop segment %s: %w", path, err)
			}
			stats.TornSegments++
			continue
		}
		stats.Segments++
		good, tornBytes, records, err := w.scanSegment(path, apply)
		if err != nil {
			return stats, err
		}
		stats.Records += records
		if tornBytes > 0 {
			stats.TornBytes = tornBytes
			if err := w.opts.FS.Truncate(path, good); err != nil {
				return stats, fmt.Errorf("wal: truncate %s: %w", path, err)
			}
			torn = true
		}
		lastIdx, lastSize = idx, good
	}
	if stats.TornSegments > 0 || stats.TornBytes > 0 {
		if err := w.opts.FS.SyncDir(w.opts.Dir); err != nil {
			return stats, fmt.Errorf("wal: sync dir after truncation: %w", err)
		}
	}

	// Reopen the last surviving segment for appending. Segment files
	// are append-only and crashfs files are opened at the end by
	// re-creating content: copy the surviving bytes into a fresh file.
	// To avoid rewriting (and because crashfs.File has no O_APPEND
	// open), recovery instead continues in a new segment; the old ones
	// stay read-only until the next checkpoint truncates them.
	next := lastIdx + 1
	if lastSize == 0 && stats.Records == 0 && len(segs) == 1 {
		next = lastIdx // empty log: reuse the first segment slot
	}
	if err := w.startSegment(next); err != nil {
		return stats, err
	}
	return stats, nil
}

// scanSegment replays one segment file. It returns the offset of the
// end of the last intact frame, the number of torn trailing bytes, and
// the record count.
func (w *WAL) scanSegment(path string, apply func([]byte) error) (good int64, torn int64, records int, err error) {
	f, err := w.opts.FS.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: open %s: %w", path, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: read %s: %w", path, err)
	}
	off := int64(0)
	total := int64(len(data))
	for off < total {
		if total-off < frameHeader {
			return off, total - off, records, nil
		}
		length := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length > maxPayload || off+frameHeader+int64(length) > total {
			return off, total - off, records, nil
		}
		payload := data[off+frameHeader : off+frameHeader+int64(length)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, total - off, records, nil
		}
		if apply != nil {
			if err := apply(payload); err != nil {
				return off, 0, records, fmt.Errorf("wal: replay %s at %d: %w", path, off, err)
			}
		}
		off += frameHeader + int64(length)
		records++
	}
	return off, 0, records, nil
}

func (w *WAL) segPath(idx uint64) string { return filepath.Join(w.opts.Dir, segName(idx)) }

// startSegment creates and durably links a fresh active segment.
func (w *WAL) startSegment(idx uint64) error {
	f, err := w.opts.FS.Create(w.segPath(idx))
	if err != nil {
		return fmt.Errorf("wal: create segment %d: %w", idx, err)
	}
	if err := w.opts.FS.SyncDir(w.opts.Dir); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: sync dir for segment %d: %w", idx, err)
	}
	w.seg = f
	w.segIdx = idx
	w.segSize = 0
	return nil
}

// Append frames payload and writes it to the active segment, rotating
// and syncing as the policy dictates. When Append returns nil under
// SyncEachRecord, the record is durable. The frame is built in a
// per-WAL scratch buffer — w.mu already serializes appends — so the
// steady state allocates nothing (BenchmarkAllocWALAppend).
//
//codalint:hotpath journal framing
func (w *WAL) Append(payload []byte) error {
	var untraced obs.SpanContext
	return w.AppendSpan(payload, untraced)
}

// AppendSpan is Append on behalf of a traced operation: the whole
// append becomes a wal_append span under parent, with the fsync (when
// the policy forces one) as a wal_fsync child — the critical path's
// fsync bucket. An invalid parent makes this exactly Append: no span
// work touches the untraced hot path.
//
//codalint:hotpath journal framing
func (w *WAL) AppendSpan(payload []byte, parent obs.SpanContext) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil {
		return errors.New("wal: closed")
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("wal: payload %d exceeds %d", len(payload), maxPayload)
	}
	var syncCtx obs.SpanContext
	if parent.Valid() {
		//codalint:ignore allocscan span minting runs only for traced appends; the untraced steady state never enters this branch
		sp := w.opts.Obs.StartSpan(w.opts.Node, "wal_append", parent)
		syncCtx = sp.Context() //codalint:ignore allocscan traced-append branch only; see above
		//codalint:ignore allocscan traced-append branch only; see above
		defer sp.End()
	}

	if w.segSize > 0 && w.segSize+frameHeader+int64(len(payload)) > w.opts.SegmentBytes {
		//codalint:ignore lockhold the WAL mutex is the fsync serialization point: rotation must be ordered with appends
		if err := w.rotateLocked(); err != nil { //codalint:ignore allocscan rotation fires once per SegmentBytes of traffic; its path names are amortized
			return err
		}
	}

	if need := frameHeader + len(payload); cap(w.scratch) < need {
		//codalint:ignore allocscan scratch growth fires once per high-water payload size, then every append reuses it
		w.scratch = make([]byte, need)
	}
	frame := w.scratch[:frameHeader+len(payload)]
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeader:], payload)
	if _, err := w.seg.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.segSize += int64(len(frame))
	w.dirty = true
	w.met.appends.Inc()
	w.met.appendBytes.Add(int64(len(frame)))

	switch w.opts.Policy {
	case SyncEachRecord:
		//codalint:ignore lockhold the WAL mutex is the fsync serialization point: durable order must equal append order
		return w.syncSpanLocked(syncCtx)
	case SyncInterval:
		now := w.opts.Clock.Now()
		if now.Sub(w.lastSync) >= w.opts.Interval {
			//codalint:ignore lockhold the WAL mutex is the fsync serialization point: durable order must equal append order
			if err := w.syncSpanLocked(syncCtx); err != nil {
				return err
			}
			w.lastSync = now
		}
	case SyncNone:
	}
	return nil
}

// syncSpanLocked is syncLocked with the force-down recorded as a
// wal_fsync span when the append is traced and a sync actually runs.
//
//codalint:hotpath journal framing
func (w *WAL) syncSpanLocked(parent obs.SpanContext) error {
	if !parent.Valid() || !w.dirty {
		return w.syncLocked()
	}
	//codalint:ignore allocscan span minting runs only for traced appends; the untraced steady state returns above
	sp := w.opts.Obs.StartSpan(w.opts.Node, "wal_fsync", parent)
	err := w.syncLocked()
	sp.End() //codalint:ignore allocscan traced-append branch only; see above
	return err
}

// rotateLocked finishes the active segment (forcing it down — a rotated
// segment is always fully durable) and opens the next one.
func (w *WAL) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.seg.Close(); err != nil {
		return fmt.Errorf("wal: close segment %d: %w", w.segIdx, err)
	}
	return w.startSegment(w.segIdx + 1)
}

func (w *WAL) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := w.seg.Sync(); err != nil {
		return fmt.Errorf("wal: sync segment %d: %w", w.segIdx, err)
	}
	w.dirty = false
	w.met.fsyncs.Inc()
	return nil
}

// Sync forces all appended records to stable storage regardless of
// policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil {
		return errors.New("wal: closed")
	}
	//codalint:ignore lockhold the WAL mutex is the fsync serialization point: Sync flushes under the same order as appends
	return w.syncLocked()
}

// Reset truncates the log after a checkpoint: every segment is removed
// and a fresh one started. Call only once the checkpoint snapshot is
// durable; the caller's snapshot watermark (not this truncation) is
// what protects against replaying pre-checkpoint records if the crash
// lands between snapshot and Reset.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil {
		return errors.New("wal: closed")
	}
	if err := w.seg.Close(); err != nil {
		return fmt.Errorf("wal: close segment %d: %w", w.segIdx, err)
	}
	w.seg = nil
	names, err := w.opts.FS.ReadDir(w.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: list %s: %w", w.opts.Dir, err)
	}
	for _, name := range names {
		if _, ok := parseSegName(name); !ok {
			continue
		}
		if err := w.opts.FS.Remove(filepath.Join(w.opts.Dir, name)); err != nil {
			return fmt.Errorf("wal: remove %s: %w", name, err)
		}
	}
	//codalint:ignore lockhold truncation replaces the log; the lock must exclude appends until the new segment is durable
	if err := w.opts.FS.SyncDir(w.opts.Dir); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	//codalint:ignore lockhold truncation replaces the log; the lock must exclude appends until the new segment is durable
	return w.startSegment(1)
}

// Close syncs and closes the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg == nil {
		return nil
	}
	//codalint:ignore lockhold final flush before close; the lock excludes appends while the log is torn down
	syncErr := w.syncLocked()
	closeErr := w.seg.Close()
	w.seg = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
