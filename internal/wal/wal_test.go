package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/crashfs"
	"repro/internal/simtime"
)

func openCollect(t *testing.T, opts Options) (*WAL, [][]byte, RecoveryStats) {
	t.Helper()
	var got [][]byte
	w, stats, err := Open(opts, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, got, stats
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	fs := crashfs.NewMem()
	opts := Options{FS: fs, Dir: "j", Policy: SyncEachRecord}

	w, got, _ := openCollect(t, opts)
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("record-%03d-%s", i, string(make([]byte, i*7))))
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	fs.Crash()
	fs.Reboot()

	w2, got, stats := openCollect(t, opts)
	defer w2.Close()
	if stats.TornBytes != 0 || stats.Records != 20 {
		t.Fatalf("recovery stats: %+v", stats)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	fs := crashfs.NewMem()
	opts := Options{FS: fs, Dir: "j", Policy: SyncEachRecord, SegmentBytes: 64}
	w, _, _ := openCollect(t, opts)
	for i := 0; i < 10; i++ {
		if err := w.Append(bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("j")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 5 {
		t.Fatalf("expected rotation to produce many segments, got %v", names)
	}
	w2, got, stats := openCollect(t, opts)
	defer w2.Close()
	if stats.Records != 10 || len(got) != 10 {
		t.Fatalf("replay across segments: %+v, %d records", stats, len(got))
	}
	for i, p := range got {
		if len(p) != 40 || p[0] != byte(i) {
			t.Fatalf("record %d corrupted: %q", i, p)
		}
	}
}

// TestTornTailTruncated: a crash mid-frame leaves a torn tail; recovery
// replays the intact prefix, truncates the tear, and a subsequent
// append+recover round trip is clean.
func TestTornTailTruncated(t *testing.T) {
	// The in-flight frame is 8 header + 11 payload bytes; keep ranges
	// over every strictly-partial survival (keep == 19 would persist the
	// whole frame, which recovery rightly replays).
	for keep := 0; keep < 19; keep++ {
		fs := crashfs.NewMem()
		opts := Options{FS: fs, Dir: "j", Policy: SyncEachRecord}
		w, _, _ := openCollect(t, opts)
		for i := 0; i < 5; i++ {
			if err := w.Append([]byte(fmt.Sprintf("intact-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		// The 6th append's write is the power cut; keep bytes of its
		// frame survive as a torn tail.
		fs.ArmCrash(1, keep)
		if err := w.Append([]byte("torn-record")); !errors.Is(err, crashfs.ErrCrashed) {
			t.Fatalf("keep=%d: crashing append returned %v", keep, err)
		}
		fs.Reboot()

		w2, got, stats := openCollect(t, opts)
		if len(got) != 5 || stats.Records != 5 {
			t.Fatalf("keep=%d: replayed %d records (stats %+v), want 5", keep, len(got), stats)
		}
		if keep > 0 && stats.TornBytes == 0 {
			t.Fatalf("keep=%d: expected torn bytes in stats", keep)
		}
		for i, p := range got {
			if want := fmt.Sprintf("intact-%d", i); string(p) != want {
				t.Fatalf("keep=%d record %d: got %q want %q", keep, i, p, want)
			}
		}
		// The log must be append-ready after truncation.
		if err := w2.Append([]byte("after-recovery")); err != nil {
			t.Fatal(err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		w3, got, _ := openCollect(t, opts)
		if len(got) != 6 || string(got[5]) != "after-recovery" {
			t.Fatalf("keep=%d: post-recovery append lost: %d records", keep, len(got))
		}
		w3.Close()
	}
}

// TestCorruptMiddleStopsReplay: a flipped byte in an early frame stops
// replay at that frame; later segments are dropped, not replayed out of
// order.
func TestCorruptMiddleStopsReplay(t *testing.T) {
	fs := crashfs.NewMem()
	opts := Options{FS: fs, Dir: "j", Policy: SyncEachRecord, SegmentBytes: 48}
	w, _, _ := openCollect(t, opts)
	for i := 0; i < 6; i++ {
		if err := w.Append([]byte(fmt.Sprintf("rec-%d-aaaaaaaaaaaaaaaa", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("j")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("want several segments, got %v", names)
	}
	// Flip a payload byte in the second segment.
	corruptSegment(t, fs, "j/"+names[1])

	w2, got, stats := openCollect(t, opts)
	defer w2.Close()
	if len(got) >= 6 {
		t.Fatalf("corrupted log replayed all %d records", len(got))
	}
	if stats.TornBytes == 0 {
		t.Fatalf("corruption not reported: %+v", stats)
	}
	if stats.TornSegments == 0 {
		t.Fatalf("segments after the corruption must be dropped: %+v", stats)
	}
	for i, p := range got {
		if want := fmt.Sprintf("rec-%d-aaaaaaaaaaaaaaaa", i); string(p) != want {
			t.Fatalf("record %d: got %q want %q", i, p, want)
		}
	}
}

// corruptSegment flips one payload byte of the first frame in the file.
func corruptSegment(t *testing.T, fs *crashfs.Mem, path string) {
	t.Helper()
	f, err := fs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	n, _ := f.Read(buf)
	f.Close()
	if n <= frameHeader {
		t.Fatalf("segment %s too short to corrupt", path)
	}
	buf[frameHeader] ^= 0xff
	g, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	g.Close()
	if err := fs.SyncDir("j"); err != nil {
		t.Fatal(err)
	}
}

// TestSyncIntervalPolicy: appends inside the flush window stay
// volatile; once the window elapses the next append syncs everything.
func TestSyncIntervalPolicy(t *testing.T) {
	sim := simtime.NewSim(simtime.Epoch1995)
	fs := crashfs.NewMem()
	opts := Options{FS: fs, Dir: "j", Policy: SyncInterval, Interval: 30 * time.Second, Clock: sim}
	sim.Run(func() {
		w, _, _ := openCollect(t, opts)
		if err := w.Append([]byte("early")); err != nil { // within window: volatile
			t.Fatal(err)
		}
		fs.Crash()
		fs.Reboot()
		w2, got, _ := openCollect(t, opts)
		if len(got) != 0 {
			t.Fatalf("un-flushed append survived: %d records", len(got))
		}
		if err := w2.Append([]byte("first")); err != nil {
			t.Fatal(err)
		}
		sim.Sleep(31 * time.Second)
		if err := w2.Append([]byte("second")); err != nil { // window elapsed: syncs
			t.Fatal(err)
		}
		fs.Crash()
		fs.Reboot()
		_, got, _ = openCollect(t, opts)
		if len(got) != 2 {
			t.Fatalf("flush-window sync lost records: got %d, want 2", len(got))
		}
	})
}

// TestResetTruncatesAfterCheckpoint: Reset removes every segment; a
// recovery after Reset replays nothing.
func TestResetTruncatesAfterCheckpoint(t *testing.T) {
	fs := crashfs.NewMem()
	opts := Options{FS: fs, Dir: "j", Policy: SyncEachRecord, SegmentBytes: 64}
	w, _, _ := openCollect(t, opts)
	for i := 0; i < 8; i++ {
		if err := w.Append(bytes.Repeat([]byte{1}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("post-checkpoint")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	fs.Reboot()
	w2, got, _ := openCollect(t, opts)
	defer w2.Close()
	if len(got) != 1 || string(got[0]) != "post-checkpoint" {
		t.Fatalf("after Reset: replayed %d records %q", len(got), got)
	}
}

// TestAppendFailsAfterSyncError: an injected sync failure surfaces as
// an append error under SyncEachRecord.
func TestAppendFailsAfterSyncError(t *testing.T) {
	fs := crashfs.NewMem()
	w, _, _ := openCollect(t, Options{FS: fs, Dir: "j", Policy: SyncEachRecord})
	defer w.Close()
	boom := errors.New("disk full")
	fs.FailSync(1, boom)
	if err := w.Append([]byte("x")); !errors.Is(err, boom) {
		t.Fatalf("append with failing sync: %v", err)
	}
	if err := w.Append([]byte("y")); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
}

// TestIntervalRequiresClock: the clock must be injected for the
// interval policy (codalint keeps wal off the real-clock allowlist).
func TestIntervalRequiresClock(t *testing.T) {
	_, _, err := Open(Options{FS: crashfs.NewMem(), Dir: "j", Policy: SyncInterval}, nil)
	if err == nil {
		t.Fatal("Open with SyncInterval and no clock must fail")
	}
}
