package wal

import (
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/crashfs"
	"repro/internal/simtime"
)

// BenchmarkWALAppend measures the cost of one journaled mutation under
// each fsync policy, on the real filesystem. The spread between
// SyncEachRecord and SyncInterval is the latency the ~30s flush window
// (Coda's RVM discipline, §4.3.1) buys back.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 256)
	for _, bc := range []struct {
		name string
		opts Options
	}{
		{"each", Options{Policy: SyncEachRecord}},
		{"interval30s", Options{Policy: SyncInterval, Interval: 30 * time.Second}},
		{"none", Options{Policy: SyncNone}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := bc.opts
			opts.FS = crashfs.OS{}
			opts.Dir = b.TempDir()
			if opts.Policy == SyncInterval {
				sim := simtime.NewSim(simtime.Epoch1995)
				opts.Clock = sim
				sim.Run(func() { runAppendBench(b, opts, payload) })
				return
			}
			runAppendBench(b, opts, payload)
		})
	}
}

func runAppendBench(b *testing.B, opts Options, payload []byte) {
	b.Helper()
	w, _, err := Open(opts, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocWALAppend pins the append framing path at zero
// steady-state heap allocations: the frame is built in the per-WAL
// scratch buffer (amortized growth only) and the in-memory filesystem
// copies it on Write. SyncNone isolates framing from fsync cost.
// Enforced by benchgate against bench_baseline.json.
func BenchmarkAllocWALAppend(b *testing.B) {
	fs := crashfs.NewMem()
	w, _, err := Open(Options{FS: fs, Dir: "j", Policy: SyncNone, SegmentBytes: 1 << 30}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := make([]byte, 256)
	if err := w.Append(payload); err != nil { // warm the scratch buffer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

const benchRecords = 10_000

// BenchmarkRecoveryReplay measures a cold start that replays a full WAL
// of benchRecords mutations into the apply function.
func BenchmarkRecoveryReplay(b *testing.B) {
	fs := crashfs.NewMem()
	opts := Options{FS: fs, Dir: "j", Policy: SyncNone, SegmentBytes: 1 << 20}
	w, _, err := Open(opts, nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchRecords; i++ {
		if err := w.Append([]byte(fmt.Sprintf("mutation-%06d-%0240d", i, i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		r, stats, err := Open(opts, func(p []byte) error { n++; return nil })
		if err != nil {
			b.Fatal(err)
		}
		if n != benchRecords || stats.Records != benchRecords {
			b.Fatalf("replayed %d records (stats %+v)", n, stats)
		}
		r.Close()
	}
}

// BenchmarkRecoverySnapshotOnly is the baseline: a cold start that only
// streams a snapshot of the same total size, with no per-record framing
// or CRC work. The gap against BenchmarkRecoveryReplay is the price of
// keeping the journal instead of checkpointing on every mutation.
func BenchmarkRecoverySnapshotOnly(b *testing.B) {
	fs := crashfs.NewMem()
	if err := fs.MkdirAll("s"); err != nil {
		b.Fatal(err)
	}
	f, err := fs.Create("s/snapshot")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchRecords; i++ {
		if _, err := f.Write([]byte(fmt.Sprintf("mutation-%06d-%0240d", i, i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		b.Fatal(err)
	}
	f.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := fs.Open("s/snapshot")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, g); err != nil {
			b.Fatal(err)
		}
		g.Close()
	}
}
