// Package repro's top-level benchmarks regenerate each of the paper's
// tables and figures (in reduced "quick" form — run cmd/codabench for the
// full-scale tables) and report the headline number of each experiment as
// a custom metric. Micro-benchmarks for the core mechanisms follow.
//
//	go test -bench=. -benchmem
package repro

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/andrew"
	"repro/internal/cml"
	"repro/internal/codafs"
	"repro/internal/experiments"
	"repro/internal/netmon"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rpc2"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/venus"
	"repro/internal/wire"
)

func quickOpts(i int) experiments.Options {
	return experiments.Options{Seed: int64(i), Quick: true}
}

// BenchmarkFig1Transport regenerates Figure 1 (SFTP vs TCP throughput).
// Metric: SFTP modem throughput in Kb/s (paper: 6.6).
func BenchmarkFig1Transport(b *testing.B) {
	var modemKbps float64
	for i := 0; i < b.N; i++ {
		res := experiments.Figure1(quickOpts(i))
		for _, r := range res.Rows {
			if r.Protocol == "SFTP" && r.Network.Name == "Modem" {
				modemKbps = r.RecvKbps
			}
		}
	}
	b.ReportMetric(modemKbps, "sftp-modem-Kb/s")
}

// BenchmarkFig4Aging regenerates Figure 4 (aging-window study). Metric:
// savings ratio at the default A=600 s on the first trace.
func BenchmarkFig4Aging(b *testing.B) {
	var at600 float64
	for i := 0; i < b.N; i++ {
		res := experiments.Figure4(quickOpts(i))
		for _, p := range res.Curves[0].Points {
			if p.A == 600*time.Second {
				at600 = p.Ratio
			}
		}
	}
	b.ReportMetric(at600, "savings-ratio-A600")
}

// BenchmarkFig7Patience regenerates Figure 7 (patience model).
func BenchmarkFig7Patience(b *testing.B) {
	var maxKB float64
	for i := 0; i < b.N; i++ {
		res := experiments.Figure7(quickOpts(i))
		maxKB = float64(res.MaxSizes[9600][9]) / 1024 // priority 900 at modem
	}
	b.ReportMetric(maxKB, "tau-size-P900-modem-KB")
}

// BenchmarkFig8Validation regenerates Figure 8 (rapid cache validation).
// Metric: modem speedup of volume stamps over per-object validation.
func BenchmarkFig8Validation(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res := experiments.Figure8(quickOpts(i))
		var obj, vol float64
		for _, c := range res.Cells {
			if c.User == res.Profiles[0].User && c.Network.Name == "Modem" {
				if c.Scheme == "object" {
					obj = c.Seconds
				} else {
					vol = c.Seconds
				}
			}
		}
		if vol > 0 {
			speedup = obj / vol
		}
	}
	b.ReportMetric(speedup, "modem-speedup-x")
}

// BenchmarkFig9Deployment regenerates Figure 9 (deployment statistics).
// Metric: mean validation success percentage (paper: ~97%).
func BenchmarkFig9Deployment(b *testing.B) {
	var successPct float64
	for i := 0; i < b.N; i++ {
		res := experiments.Figure9(quickOpts(i))
		var sum float64
		all := append(append([]experiments.Fig9Row{}, res.Desktops...), res.Laptops...)
		for _, r := range all {
			sum += r.SuccessPct
		}
		successPct = sum / float64(len(all))
	}
	b.ReportMetric(successPct, "validation-success-%")
}

// BenchmarkFig10Compressibility regenerates Figure 10 (compressibility
// histogram). Metric: fraction of segments below 20%.
func BenchmarkFig10Compressibility(b *testing.B) {
	var below20 float64
	for i := 0; i < b.N; i++ {
		below20 = experiments.Figure10(quickOpts(i)).Below20
	}
	b.ReportMetric(below20, "below-20pct-fraction")
}

// BenchmarkFig11Segments regenerates Figure 11 (segment characteristics).
func BenchmarkFig11Segments(b *testing.B) {
	var concord float64
	for i := 0; i < b.N; i++ {
		res := experiments.Figure11(experiments.Options{Seed: int64(i)})
		concord = res.Rows[3].Compressibility
	}
	b.ReportMetric(concord*100, "concord-compress-%")
}

// BenchmarkFig12TraceReplay regenerates Figures 12/13/14 (trace replay).
// Metric: modem slowdown relative to Ethernet in percent (paper: ~2%).
func BenchmarkFig12TraceReplay(b *testing.B) {
	var slowdownPct float64
	for i := 0; i < b.N; i++ {
		res := experiments.Figure12(quickOpts(i))
		combo := experiments.Fig12Combo{Lambda: time.Second, Aging: 600 * time.Second}
		var sum float64
		n := 0
		for _, seg := range res.Segments {
			e := res.Cells[combo][seg]["Ethernet"].Mean
			m := res.Cells[combo][seg]["Modem"].Mean
			if e > 0 {
				sum += (m/e - 1) * 100
				n++
			}
		}
		slowdownPct = sum / float64(n)
	}
	b.ReportMetric(slowdownPct, "modem-slowdown-%")
}

// ---- Ablations (design choices called out in DESIGN.md) ----

func BenchmarkAblationNoAging(b *testing.B) {
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationAging(quickOpts(i))
	}
	b.ReportMetric(r.Baseline, "KB-shipped-A600")
	b.ReportMetric(r.Alternative, "KB-shipped-A0")
}

func BenchmarkAblationNoLogOpt(b *testing.B) {
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationLogOptimizations(quickOpts(i))
	}
	b.ReportMetric(r.Baseline, "KB-shipped-opt")
	b.ReportMetric(r.Alternative, "KB-shipped-noopt")
}

func BenchmarkAblationFixedChunk(b *testing.B) {
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationChunkSize(quickOpts(i))
	}
	b.ReportMetric(r.Baseline, "worst-fetch-s-adaptive")
	b.ReportMetric(r.Alternative, "worst-fetch-s-huge-chunk")
}

func BenchmarkAblationNoVolumeCallbacks(b *testing.B) {
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationVolumeCallbacks(quickOpts(i))
	}
	b.ReportMetric(r.Baseline, "validate-s-volume")
	b.ReportMetric(r.Alternative, "validate-s-object")
}

func BenchmarkAblationDeltaShipping(b *testing.B) {
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationDeltas(quickOpts(i))
	}
	b.ReportMetric(r.Baseline, "KB-shipped-deltas")
	b.ReportMetric(r.Alternative, "KB-shipped-full")
}

func BenchmarkAblationFixedRTO(b *testing.B) {
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationAdaptiveRTO(quickOpts(i))
	}
	b.ReportMetric(r.Baseline, "rpcs-s-adaptive")
	b.ReportMetric(r.Alternative, "rpcs-s-fixed")
}

// ---- Micro-benchmarks of the core mechanisms ----

// BenchmarkCMLAppendOptimize measures CML appends under active
// cancellation (repeated stores of the same files).
func BenchmarkCMLAppendOptimize(b *testing.B) {
	log := cml.NewLog()
	t0 := simtime.Epoch1995
	data := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fid := codafs.FID{Volume: 1, Vnode: uint64(i % 64), Unique: 1}
		log.Append(cml.Record{Kind: cml.Store, FID: fid, Data: data, Length: 4096},
			t0.Add(time.Duration(i)*time.Second))
	}
}

// BenchmarkRPC2RoundTrip measures simulated small-RPC round trips on an
// Ethernet profile, including gob encode/decode of a status block.
func BenchmarkRPC2RoundTrip(b *testing.B) {
	s := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(s, 1)
	net.SetDefaults(netsim.Ethernet.Params())
	srv := rpc2.NewNode(s, net.Host("server"), netmon.NewMonitor(s), func(src string, _ obs.SpanContext, body []byte) ([]byte, error) {
		return body, nil
	}, nil)
	_ = srv
	c := rpc2.NewNode(s, net.Host("client"), netmon.NewMonitor(s), nil, nil)
	body, _ := wire.Encode(wire.GetAttr{FID: codafs.FID{Volume: 1, Vnode: 2, Unique: 3}})
	b.ResetTimer()
	s.Run(func() {
		for i := 0; i < b.N; i++ {
			if _, err := c.Call("server", body, rpc2.CallOpts{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSFTPTransfer1MB measures a simulated 1 MB SFTP transfer over
// Ethernet, end to end.
func BenchmarkSFTPTransfer1MB(b *testing.B) {
	data := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		s := simtime.NewSim(simtime.Epoch1995)
		net := netsim.New(s, int64(i))
		net.SetDefaults(netsim.Ethernet.Params())
		a := rpc2.NewNode(s, net.Host("a"), netmon.NewMonitor(s), nil, nil)
		z := rpc2.NewNode(s, net.Host("z"), netmon.NewMonitor(s), nil, nil)
		s.Run(func() {
			done := simtime.NewQueue[error](s)
			s.Go(func() { done.Put(a.Transfer("z", 1, data)) })
			if _, err := z.AwaitTransfer("a", 1, time.Hour); err != nil {
				b.Fatal(err)
			}
			done.Get()
		})
	}
}

// BenchmarkPatienceThreshold measures the patience model evaluation.
func BenchmarkPatienceThreshold(b *testing.B) {
	p := venus.DefaultPatience()
	for i := 0; i < b.N; i++ {
		_ = p.MaxFileSize(i%1000, 9600)
	}
}

// BenchmarkTraceGenerate measures synthetic segment generation.
func BenchmarkTraceGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trace.Generate(trace.SegmentPreset("Holst", int64(i)))
	}
}

// BenchmarkVenusCachedRead measures a cache-hit read through Venus.
func BenchmarkVenusCachedRead(b *testing.B) {
	s := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(s, 1)
	net.SetDefaults(netsim.Ethernet.Params())
	srv := server.New(s, net.Host("server"))
	srv.CreateVolume("usr")
	srv.WriteFile("usr", "f.txt", make([]byte, 4096))
	v := venus.New(s, net.Host("client"), venus.Config{Server: "server", ClientID: 1})
	s.Run(func() {
		if err := v.Mount("usr"); err != nil {
			b.Fatal(err)
		}
		if _, err := v.ReadFile("/coda/usr/f.txt"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := v.ReadFile("/coda/usr/f.txt"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWireEncodeDecode measures protocol marshalling of a fetch reply.
func BenchmarkWireEncodeDecode(b *testing.B) {
	rep := wire.FetchRep{Object: codafs.Object{
		Status: codafs.Status{FID: codafs.FID{Volume: 1, Vnode: 2, Unique: 3}, Type: codafs.File, Length: 4096},
		Data:   make([]byte, 4096),
	}}
	for i := 0; i < b.N; i++ {
		buf, err := wire.Encode(rep)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAndrewInsensitivity runs the Andrew-benchmark analogue at
// Ethernet and modem speeds and reports the ratio — demonstrating the
// paper's §6.2 argument that this benchmark cannot evaluate trickle
// reintegration (it is insensitive to bandwidth).
func BenchmarkAndrewInsensitivity(b *testing.B) {
	run := func(i int, prof netsim.Profile) time.Duration {
		s := simtime.NewSim(simtime.Epoch1995)
		net := netsim.New(s, int64(i))
		net.SetDefaults(netsim.Ethernet.Params())
		srv := server.New(s, net.Host("server"))
		srv.CreateVolume("bench")
		var total time.Duration
		s.Run(func() {
			v := venus.New(s, net.Host("client"), venus.Config{
				Server: "server", ClientID: 1, PinWriteDisconnected: true,
			})
			if err := v.Mount("bench"); err != nil {
				b.Fatal(err)
			}
			v.WriteDisconnect()
			net.SetLink("client", "server", prof.Params())
			v.Connect(prof.Bandwidth)
			res, err := andrew.Run(s, v, andrew.Config{Root: "/coda/bench/andrew"})
			if err != nil {
				b.Fatal(err)
			}
			total = res.Total
		})
		return total
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		eth := run(i, netsim.Ethernet)
		modem := run(i, netsim.Modem)
		ratio = float64(modem) / float64(eth)
	}
	b.ReportMetric(ratio, "modem/ethernet-ratio")
}

// BenchmarkServerParallelVolumes measures the payoff of per-volume
// concurrency domains. A bulk writer churns volume v0 with 1 MB stores
// while four clients issue small writes. With vols=1 every client write
// queues behind the bulk copies on the single volume's lock — exactly the
// behaviour of the old whole-server mutex, where it happened regardless
// of volume. With vols=4 the clients' volumes are independent domains and
// their writes complete without waiting for the churn (and, given cores,
// in parallel with it).
func BenchmarkServerParallelVolumes(b *testing.B) {
	const clients = 4
	small := bytes.Repeat([]byte("w"), 4<<10)
	bulk := bytes.Repeat([]byte("B"), 1<<20)
	for _, vols := range []int{1, 4} {
		b.Run(fmt.Sprintf("vols=%d", vols), func(b *testing.B) {
			s := simtime.NewSim(simtime.Epoch1995)
			net := netsim.New(s, 1)
			srv := server.New(s, net.Host("server"))
			defer srv.Close()
			for v := 0; v < vols; v++ {
				if _, err := srv.CreateVolume(fmt.Sprintf("v%d", v)); err != nil {
					b.Fatal(err)
				}
			}
			stop := make(chan struct{})
			var churn sync.WaitGroup
			churn.Add(1)
			go func() {
				defer churn.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := srv.WriteFile("v0", "bulk.dat", bulk); err != nil {
						b.Error(err)
						return
					}
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < clients; w++ {
					w := w
					wg.Add(1)
					go func() {
						defer wg.Done()
						// With one volume everyone shares the churned
						// domain; with several the clients work in the
						// others.
						vol := "v0"
						if vols > 1 {
							vol = fmt.Sprintf("v%d", 1+w%(vols-1))
						}
						name := fmt.Sprintf("client%d.dat", w)
						if _, err := srv.WriteFile(vol, name, small); err != nil {
							b.Error(err)
						}
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			close(stop)
			churn.Wait()
		})
	}
}
