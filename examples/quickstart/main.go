// Quickstart: a complete disconnected-operation round trip in one process.
//
// A simulated server and client are wired through the network emulator.
// The client works connected, disconnects, keeps working against its cache
// (updates go to the client modify log), reconnects, and trickle
// reintegration propagates everything back — the core §2/§4.3 life cycle.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/venus"
)

func main() {
	sim := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(sim, 1)
	net.SetDefaults(netsim.Ethernet.Params())

	srv := server.New(sim, net.Host("server"))
	mustv(srv.CreateVolume("usr"))
	mustv(srv.WriteFile("usr", "papers/s15/s15.tex", []byte("\\title{Exploiting Weak Connectivity}\n")))

	sim.Run(func() {
		v := venus.New(sim, net.Host("laptop"), venus.Config{
			Server:      "server",
			ClientID:    1,
			AgingWindow: 30 * time.Second, // short, so the demo is brisk
		})
		must(v.Mount("usr"))

		// Connected (hoarding state): reads fetch through the cache,
		// writes go through to the server.
		data, err := v.ReadFile("/coda/usr/papers/s15/s15.tex")
		must(err)
		fmt.Printf("[%s] read %d bytes of the paper draft\n", v.State(), len(data))
		must(v.WriteFile("/coda/usr/papers/s15/notes.txt", []byte("reviewer comments\n")))
		onServer, _ := srv.ReadFile("usr", "papers/s15/notes.txt")
		fmt.Printf("[%s] write-through: server already has %q\n", v.State(), onServer)

		// A hoard walk caches volume version stamps, which is what makes
		// revalidation after the disconnection a single RPC (§4.2.1).
		must(v.HoardWalk())

		// The airport: no network. Cached data stays usable; updates are
		// logged in the CML, where log optimizations cancel rewrites.
		net.SetUp("laptop", "server", false)
		v.Disconnect()
		fmt.Printf("\n[%s] disconnected; editing offline\n", v.State())
		for i := 1; i <= 3; i++ {
			body := fmt.Sprintf("\\title{Exploiting Weak Connectivity}\n%% draft %d\n", i)
			must(v.WriteFile("/coda/usr/papers/s15/s15.tex", []byte(body)))
		}
		must(v.Mkdir("/coda/usr/papers/s15/figures"))
		must(v.WriteFile("/coda/usr/papers/s15/figures/fig2.eps", make([]byte, 20_000)))
		fmt.Printf("[%s] CML: %d records, %d bytes (%d bytes cancelled by optimizations)\n",
			v.State(), v.CMLRecords(), v.CMLBytes(), v.OptimizedBytes())

		// Reconnection: a single batched RPC revalidates the whole cache
		// via volume stamps, then trickle reintegration drains the CML in
		// the background once records pass the aging window.
		net.SetUp("laptop", "server", true)
		v.Connect(10_000_000)
		st := v.Stats()
		fmt.Printf("\n[%s] reconnected; rapid validation: %d volume(s) checked, %d object validations avoided\n",
			v.State(), st.VolValidations, st.ObjsSavedByVolume)

		sim.Sleep(2 * time.Minute) // aging window + trickle interval
		final, _ := srv.ReadFile("usr", "papers/s15/s15.tex")
		fmt.Printf("[%s] after trickle reintegration the server has draft: %q\n", v.State(), lastLine(final))
		fmt.Printf("[%s] CML now %d records; shipped %d KB in %d chunk(s)\n",
			v.State(), v.CMLRecords(), v.Stats().ShippedBytes/1024, v.Stats().Reintegrations)
	})
}

func lastLine(b []byte) string {
	s := string(b)
	for i := len(s) - 2; i >= 0; i-- {
		if s[i] == '\n' {
			return s[i+1:]
		}
	}
	return s
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// mustv is must for setup calls that also return a value the demo does
// not need.
func mustv[T any](_ T, err error) {
	must(err)
}
