// Commute: a day in the life of a mobile client, across four orders of
// magnitude of bandwidth.
//
// Office Ethernet → disconnected commute → modem from home → WaveLan in a
// meeting room: the client adapts its state (Figure 2) and its update
// propagation at every step, and the user never waits on the network for
// an update.
//
// Run with: go run ./examples/commute
package main

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/venus"
)

func main() {
	sim := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(sim, 2)
	net.SetDefaults(netsim.Ethernet.Params())

	srv := server.New(sim, net.Host("server"))
	mustv(srv.CreateVolume("proj"))
	for i := 0; i < 12; i++ {
		mustv(srv.WriteFile("proj", fmt.Sprintf("src/venus/fso%d.c", i), make([]byte, 6_000)))
	}

	sim.Run(func() {
		v := venus.New(sim, net.Host("laptop"), venus.Config{
			Server:   "server",
			ClientID: 7,
		})
		must(v.Mount("proj"))
		report := func(where string) {
			fmt.Printf("%-22s state=%-19s bw=%8d b/s  CML=%2d records (%5d B)\n",
				where, v.State(), v.LinkBandwidth(), v.CMLRecords(), v.CMLBytes())
		}

		// 09:00, office Ethernet: hoard the sources for the trip.
		v.HoardAdd("/coda/proj/src", 800, true)
		must(v.HoardWalk())
		report("09:00 office (E)")

		// 17:30: pull the plug and catch the train.
		net.SetUp("laptop", "server", false)
		v.Disconnect()
		must(v.WriteFile("/coda/proj/src/venus/fso0.c", []byte("int fso_commute_fix;\n")))
		must(v.WriteFile("/coda/proj/src/venus/fso1.c", []byte("int fso_other_fix;\n")))
		report("17:30 train (off)")

		// 19:00: home, 9.6 Kb/s modem. Reconnection revalidates the whole
		// cache with one RPC; updates trickle out without the user waiting.
		sim.Sleep(90 * time.Minute)
		net.SetLink("laptop", "server", netsim.Modem.Params())
		net.SetUp("laptop", "server", true)
		v.Connect(9600)
		report("19:00 home (M)")
		sim.Sleep(15 * time.Minute) // aging window passes; trickle drains
		report("19:15 home (M)")
		if data, err := srv.ReadFile("proj", "src/venus/fso0.c"); err == nil {
			fmt.Printf("%-22s server now has the commute fix: %q\n", "", string(data))
		}

		// 21:00: about to dial down the phone line — force the rest out.
		must(v.WriteFile("/coda/proj/src/venus/fso2.c", []byte("int last_minute;\n")))
		must(v.ForceReintegrate())
		report("21:00 hang up (M)")

		// Next morning, WaveLan in a meeting room: strong enough that the
		// drained client returns to ordinary hoarding (write-through).
		net.SetLink("laptop", "server", netsim.WaveLan.Params())
		v.Connect(2_000_000)
		sim.Sleep(time.Minute)
		report("09:00 meeting (W)")

		st := v.Stats()
		fmt.Printf("\nacross the day: %d reintegration chunks, %d KB shipped, %d validations (%d instant via volume stamps)\n",
			st.Reintegrations, st.ShippedBytes/1024, st.VolValidations, st.VolValidationsOK)
		fmt.Printf("state transitions: %v\n", st.Transitions)
	})
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// mustv is must for setup calls that also return a value the demo does
// not need.
func mustv[T any](_ T, err error) {
	must(err)
}
