// Metered: the paper's future work, implemented — cost-aware adaptation
// (§8) and difference shipping (§4.1).
//
// A client on a fast but expensive cellular link tells Venus what the
// network costs. The patience model then defers fetches the user could
// easily afford in *time* but not in money, the aging window stretches so
// autosaves cancel before they are paid for, and the edits that do ship
// travel as rsync-style deltas instead of whole files.
//
// Run with: go run ./examples/metered
package main

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/venus"
)

func main() {
	sim := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(sim, 5)
	net.SetDefaults(netsim.Ethernet.Params())

	srv := server.New(sim, net.Host("server"))
	mustv(srv.CreateVolume("work"))
	report := bytes.Repeat([]byte("quarterly figures "), 8000) // ~144 KB
	mustv(srv.WriteFile("work", "report.doc", report))
	mustv(srv.WriteFile("work", "dataset.bin", make([]byte, 3<<20))) // 3 MB

	sim.Run(func() {
		v := venus.New(sim, net.Host("phone"), venus.Config{
			Server:       "server",
			ClientID:     11,
			AgingWindow:  30 * time.Second,
			EnableDeltas: true,
		})
		must(v.Mount("work"))
		// Warm the report while on the office LAN.
		if _, err := v.ReadFile("/coda/work/report.doc"); err != nil {
			panic(err)
		}

		// Tether to cellular: fast (2 Mb/s) but metered. The user tells
		// Venus: a megabyte feels like five minutes of waiting, and
		// stretch the aging window 10x so edits coalesce before shipping.
		net.SetLink("phone", "server", netsim.WaveLan.Params())
		v.WriteDisconnect()
		v.Connect(2_000_000)
		v.SetNetworkCost(venus.NetworkCost{
			PatienceSecondsPerMB: 300,
			AgingMultiplier:      10,
		})
		fmt.Println("tethered to metered cellular (2 Mb/s)")

		// Time-wise this 3 MB fetch is ~13 seconds; money-wise it is 15
		// patience-minutes. Venus defers it to the user.
		_, err := v.ReadFile("/coda/work/dataset.bin")
		var miss *venus.MissError
		if errors.As(err, &miss) {
			fmt.Printf("dataset.bin deferred: %.0fs of time+cost vs patience %.0fs\n",
				miss.Cost.Seconds(), miss.Threshold.Seconds())
		}

		// The user edits the big report three times; with the stretched
		// aging window only the last survives, and it ships as a delta.
		doc := append([]byte(nil), report...)
		for i := 0; i < 3; i++ {
			copy(doc[1000*(i+1):], []byte(fmt.Sprintf("[rev %d]", i+1)))
			must(v.WriteFile("/coda/work/report.doc", doc))
			sim.Sleep(45 * time.Second)
		}
		sim.Sleep(10 * time.Minute)

		st := v.Stats()
		fmt.Printf("edits propagated: %d delta store(s); %d KB shipped, %d KB avoided by deltas, %d KB by optimizations\n",
			st.DeltaStores, st.ShippedBytes/1024, st.DeltaSavedBytes/1024, v.OptimizedBytes()/1024)
		onServer, _ := srv.ReadFile("work", "report.doc")
		fmt.Printf("server copy intact: %v\n", bytes.Equal(onServer, doc))

		// Back in the office: free network, the dataset fetch sails through.
		net.SetLink("phone", "server", netsim.Ethernet.Params())
		v.SetNetworkCost(venus.NetworkCost{})
		v.Connect(10_000_000)
		if data, err := v.ReadFile("/coda/work/dataset.bin"); err == nil {
			fmt.Printf("back on the LAN: dataset.bin fetched (%d MB)\n", len(data)>>20)
		}
	})
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// mustv is must for setup calls that also return a value the demo does
// not need.
func mustv[T any](_ T, err error) {
	must(err)
}
