// Tricklewatch: the mechanics of trickle reintegration made visible
// (§4.3, Figure 3).
//
// A write-disconnected client on a modem performs a burst of updates,
// including repeated rewrites (cancelled by log optimizations while inside
// the aging window) and one large file (shipped as resumable fragments of
// chunk size C = 30 s of bandwidth). The CML is sampled every 30 simulated
// seconds.
//
// Run with: go run ./examples/tricklewatch
package main

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/venus"
)

func main() {
	sim := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(sim, 4)
	net.SetDefaults(netsim.Modem.Params())

	srv := server.New(sim, net.Host("server"))
	mustv(srv.CreateVolume("usr"))

	sim.Run(func() {
		v := venus.New(sim, net.Host("laptop"), venus.Config{
			Server:          "server",
			ClientID:        5,
			AgingWindow:     60 * time.Second,
			TrickleInterval: 5 * time.Second,
		})
		must(v.Mount("usr"))
		v.WriteDisconnect()
		v.Connect(9600)

		fmt.Println("time   CML-records  CML-bytes  shipped-KB  optimized-B  note")
		start := sim.Now()
		sample := func(note string) {
			st := v.Stats()
			fmt.Printf("%5.0fs  %6d     %8d   %6d      %8d    %s\n",
				sim.Now().Sub(start).Seconds(), v.CMLRecords(), v.CMLBytes(),
				st.ShippedBytes/1024, v.OptimizedBytes(), note)
		}

		// An editor autosaving the same buffer: only the last store will
		// survive the aging window.
		for i := 0; i < 4; i++ {
			must(v.WriteFile("/coda/usr/draft.txt", make([]byte, 8_000)))
			sample(fmt.Sprintf("autosave #%d of draft.txt (8 KB)", i+1))
			sim.Sleep(10 * time.Second)
		}

		// One large artifact: bigger than C = 36 KB at 9.6 Kb/s, so it
		// will cross the link as a series of resumable fragments.
		must(v.WriteFile("/coda/usr/build.tar", make([]byte, 150_000)))
		sample("wrote build.tar (150 KB > C=36 KB)")

		// Watch the trickle daemon work: after the 60-second aging window,
		// chunks leave one at a time, ~30 s of line time each.
		for i := 0; i < 10; i++ {
			sim.Sleep(30 * time.Second)
			sample("")
		}

		// The moral: the CML drained without the user ever blocking, and
		// three of the four autosaves never crossed the modem.
		onServer, err := srv.ReadFile("usr", "build.tar")
		must(err)
		fmt.Printf("\nserver received build.tar intact: %d bytes\n", len(onServer))
		st := v.Stats()
		fmt.Printf("shipped %d KB in %d chunks; optimizations cancelled %d KB before shipping\n",
			st.ShippedBytes/1024, st.Reintegrations, v.OptimizedBytes()/1024)
	})
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// mustv is must for setup calls that also return a value the demo does
// not need.
func mustv[T any](_ T, err error) {
	must(err)
}
