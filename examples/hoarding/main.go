// Hoarding: cache misses, the patience model, and user advice (§4.4).
//
// Over a 9.6 Kb/s modem, a miss on a large file would stall the user for
// many minutes, so Venus defers it and records it instead (Figure 5). The
// user reviews the miss list, hoards what matters, and the next hoard walk
// consults the advisor before fetching anything expensive (Figure 6).
//
// Run with: go run ./examples/hoarding
package main

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/venus"
)

func main() {
	sim := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(sim, 3)
	net.SetDefaults(netsim.Modem.Params())

	srv := server.New(sim, net.Host("server"))
	mustv(srv.CreateVolume("misc"))
	mustv(srv.WriteFile("misc", "tex/macros/art10.sty", make([]byte, 2_000)))
	mustv(srv.WriteFile("misc", "emacs/bin/emacs", make([]byte, 2_500_000)))
	mustv(srv.WriteFile("misc", "weather/latest", make([]byte, 300)))

	sim.Run(func() {
		v := venus.New(sim, net.Host("laptop"), venus.Config{
			Server:          "server",
			ClientID:        3,
			DefaultPriority: 100, // unhoarded objects still rate a few seconds
			// Scripted Figure 6 screen: approve pre-approved items only.
			Advisor: venus.FuncAdvisor(func(items []venus.WalkItem) []bool {
				fmt.Println("\n-- data walk approval screen (Figure 6) --")
				out := make([]bool, len(items))
				for i, it := range items {
					verdict := "ask user -> fetch"
					if it.PreApproved {
						verdict = "pre-approved"
					}
					// The user approves everything except multi-minute
					// fetches at priority below 700.
					if !it.PreApproved && it.Priority < 700 && it.Cost > 2*time.Minute {
						verdict = "suppressed by user"
						out[i] = false
					} else {
						out[i] = true
					}
					fmt.Printf("  pri=%-4d cost=%7.1fs  %-34s %s\n",
						it.Priority, it.Cost.Seconds(), it.Path, verdict)
				}
				return out
			}),
		})
		must(v.Mount("misc"))
		v.WriteDisconnect() // weakly connected at 9.6 Kb/s
		v.Connect(9600)

		v.SetProgram("virtex")
		// Small miss: under the patience threshold even at default
		// priority — fetched transparently.
		if _, err := v.ReadFile("/coda/misc/tex/macros/art10.sty"); err != nil {
			panic(err)
		}
		fmt.Println("art10.sty (2 KB): fetched transparently at 9.6 Kb/s")

		// Large miss: ~35 minutes at modem speed — deferred.
		v.SetProgram("csh")
		_, err := v.ReadFile("/coda/misc/emacs/bin/emacs")
		var miss *venus.MissError
		if errors.As(err, &miss) {
			fmt.Printf("emacs (2.5 MB): deferred — est %.0fs exceeds patience %.0fs\n",
				miss.Cost.Seconds(), miss.Threshold.Seconds())
		}

		// The Figure 5 screen: review recorded misses, hoard the one that
		// matters at high priority.
		fmt.Println("\n-- miss review screen (Figure 5) --")
		for _, m := range v.Misses() {
			fmt.Printf("  %-40s referenced by %s\n", m.Path, m.Program)
		}
		v.HoardAdd("/coda/misc/emacs/bin/emacs", 900, false)
		fmt.Println("hoarded emacs at priority 900; fetch deferred to the hoard walk")

		// The walk: priority 900 gives τ ≈ 2.3 hours, so the 35-minute
		// fetch is pre-approved and happens in the background.
		must(v.HoardWalk())
		if data, err := v.ReadFile("/coda/misc/emacs/bin/emacs"); err == nil {
			fmt.Printf("\nafter the walk, emacs is cached locally (%d bytes)\n", len(data))
		}
		st := v.Stats()
		fmt.Printf("misses: %d transparent, %d deferred\n", st.TransparentFetches, st.DeferredMisses)
	})
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// mustv is must for setup calls that also return a value the demo does
// not need.
func mustv[T any](_ T, err error) {
	must(err)
}
