// Replicated: a three-server volume storage group surviving a member
// failure without the client noticing.
//
// Three servers carry the volume; a client writes through its preferred
// member, which ships each committed update to its peers. Mid-session
// the preferred member drops off the network: the client's next call
// times out once, fails over, and work continues. When the member comes
// back it pulls the log suffix it missed from a peer, and the example
// proves convergence by comparing every member's serialized state
// byte for byte.
//
// Run with: go run ./examples/replicated
package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/venus"
)

func main() {
	sim := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(sim, 3)
	net.SetDefaults(netsim.WaveLan.Params())

	grp, err := group.New(sim, []netsim.PacketConn{
		net.Host("srv-a"), net.Host("srv-b"), net.Host("srv-c"),
	})
	must(err)
	info, err := grp.CreateVolume("proj")
	must(err)
	must(grp.WriteFile("proj", "notes/plan.txt", []byte("v1 plan\n")))

	sim.Run(func() {
		v := venus.New(sim, net.Host("laptop"), venus.Config{
			Servers:  grp.Addrs(),
			ClientID: 1,
		})
		must(v.Mount("proj"))

		report := func(where string) {
			st := v.Stats()
			fmt.Printf("%-28s state=%-18s failovers=%d\n", where, v.State(), st.Failovers)
		}

		must(v.WriteFile("/coda/proj/notes/plan.txt", []byte("v2 plan\n")))
		report("all members up")

		// The volume's preferred member — the one the client's traffic
		// targets — goes dark.
		prefIdx := int(uint64(info.ID) % uint64(grp.Len()))
		pref := grp.Addrs()[prefIdx]
		net.SetUp("laptop", pref, false)
		must(v.WriteFile("/coda/proj/notes/plan.txt", []byte("v3 plan, written around the outage\n")))
		must(v.WriteFile("/coda/proj/notes/todo.txt", []byte("1. ship it\n")))
		report("preferred member down")

		// The member returns and pulls what it missed from a peer.
		net.SetUp("laptop", pref, true)
		must(grp.Member(prefIdx).CatchUp(grp.Addrs()[(prefIdx+1)%grp.Len()]))
		sim.Sleep(5 * time.Second) // let in-flight ships settle

		images := make([][]byte, grp.Len())
		for i := 0; i < grp.Len(); i++ {
			var buf bytes.Buffer
			must(grp.Member(i).SaveState(&buf))
			images[i] = buf.Bytes()
		}
		for i := 1; i < len(images); i++ {
			if !bytes.Equal(images[0], images[i]) {
				fmt.Printf("member %d diverged from member 0\n", i)
				os.Exit(1)
			}
		}
		fmt.Printf("all %d members byte-identical after catch-up (%d bytes each)\n",
			grp.Len(), len(images[0]))
	})
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
