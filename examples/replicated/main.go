// Replicated: a three-server volume storage group surviving a member
// failure without the client noticing.
//
// The experiment itself now lives in a declarative scenario file —
// internal/scenario/testdata/scenarios/replicated_kill_catchup.scn —
// and this example is a thin wrapper that loads and runs it, exactly
// what `codascn run` does. The scenario writes through an AVSG while
// the preferred member is partitioned away, fails over, heals, and
// asserts the group converges byte-identical.
//
// Run with: go run ./examples/replicated
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/scenario"
)

const scenarioFile = "internal/scenario/testdata/scenarios/replicated_kill_catchup.scn"

func main() {
	root, err := repoRoot()
	must(err)
	src, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(scenarioFile)))
	must(err)
	s, err := scenario.Parse("replicated_kill_catchup", src)
	must(err)
	res, err := scenario.Run(s)
	must(err)

	for _, a := range res.Asserts {
		verdict := "ok  "
		if !a.OK {
			verdict = "FAIL"
		}
		fmt.Printf("%s %-12s %s\n", verdict, a.Kind, a.Detail)
	}
	if !res.OK() {
		for _, f := range res.Failures() {
			fmt.Fprintln(os.Stderr, f)
		}
		os.Exit(1)
	}
	fmt.Printf("PASS %s (%d steps, %d asserts)\n", res.Scenario, res.Steps, len(res.Asserts))
}

// repoRoot walks up from the working directory to the module root, so
// the example runs from any subdirectory.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory; run from inside the repo")
		}
		dir = parent
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
