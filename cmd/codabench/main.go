// Command codabench regenerates the paper's tables and figures on the
// simulated substrate and prints them in the paper's layout.
//
// Usage:
//
//	codabench [-fig 1,4,7,8,9,10,11,12,repl] [-ablations] [-quick] [-seed N] [-trials N] [-o out.txt] [-json out.json] [-trace out.trace.json]
//
// -fig selects figures (default all); Figure 12 includes Figures 13 and 14,
// and "repl" is the replication overhead/failover experiment (not a paper
// figure).
// -quick runs reduced workloads (for smoke testing); the full run matches
// the scales recorded in EXPERIMENTS.md.
// -json writes a machine-readable record of every run: an array of
// {figure, params, series, metrics} objects, where series is the typed
// figure result and metrics holds the deterministic obs.Registry dumps
// captured by the runs that produced it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// renderable is what every figure and ablation result satisfies.
type renderable interface{ Render() string }

// snapshotter is satisfied by results that embed experiments.ObsSnapshots.
type snapshotter interface {
	RegistrySnapshots() []experiments.RegistrySnapshot
}

// traceExporter is satisfied by results that captured a Perfetto span
// export (currently Figure 12's first replay).
type traceExporter interface{ TraceExport() []byte }

// jsonRun is one element of the -json output array.
type jsonRun struct {
	Figure  string                         `json:"figure"`
	Params  experiments.Options            `json:"params"`
	Series  any                            `json:"series"`
	Metrics []experiments.RegistrySnapshot `json:"metrics"`
}

func main() {
	figs := flag.String("fig", "1,4,7,8,9,10,11,12,repl", "comma-separated figure numbers to run")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	quick := flag.Bool("quick", false, "reduced workloads")
	seed := flag.Int64("seed", 0, "random seed")
	trials := flag.Int("trials", 0, "trials per cell (0 = paper's default of 5)")
	out := flag.String("o", "", "also write output to this file")
	jsonOut := flag.String("json", "", "write {figure, params, series, metrics} records to this file")
	traceOut := flag.String("trace", "", "write a Perfetto (Chrome trace-event) span export to this file (needs a figure that records one, e.g. 12)")
	flag.Parse()

	opts := experiments.Options{Seed: *seed, Trials: *trials, Quick: *quick}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	selected := make(map[string]bool)
	for _, f := range strings.Split(*figs, ",") {
		selected[strings.TrimSpace(f)] = true
	}

	var runs []jsonRun
	record := func(fig string, res renderable) {
		if *jsonOut == "" {
			return
		}
		jr := jsonRun{Figure: fig, Params: opts, Series: res}
		if s, ok := res.(snapshotter); ok {
			jr.Metrics = s.RegistrySnapshots()
		}
		runs = append(runs, jr)
	}

	var traceData []byte
	run := func(fig string, fn func() renderable) {
		if !selected[fig] {
			return
		}
		start := time.Now()
		fmt.Fprintf(w, "==== Figure %s ====\n", fig)
		res := fn()
		fmt.Fprint(w, res.Render())
		fmt.Fprintf(w, "(completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
		record(fig, res)
		if traceData == nil {
			if te, ok := res.(traceExporter); ok {
				traceData = te.TraceExport()
			}
		}
	}

	run("1", func() renderable { return experiments.Figure1(opts) })
	run("4", func() renderable { return experiments.Figure4(opts) })
	run("7", func() renderable { return experiments.Figure7(opts) })
	run("8", func() renderable { return experiments.Figure8(opts) })
	run("9", func() renderable { return experiments.Figure9(opts) })
	run("10", func() renderable { return experiments.Figure10(opts) })
	run("11", func() renderable { return experiments.Figure11(opts) })
	run("12", func() renderable { return experiments.Figure12(opts) })
	run("repl", func() renderable { return experiments.FigureRepl(opts) })

	if *ablations {
		fmt.Fprintln(w, "==== Ablations ====")
		for _, fn := range []func(experiments.Options) experiments.AblationResult{
			experiments.AblationAging,
			experiments.AblationLogOptimizations,
			experiments.AblationChunkSize,
			experiments.AblationVolumeCallbacks,
			experiments.AblationAdaptiveRTO,
			experiments.AblationDeltas,
		} {
			res := fn(opts)
			fmt.Fprint(w, res.Render())
			record("ablation:"+res.Name, res)
		}
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(runs, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *traceOut != "" {
		if traceData == nil {
			fmt.Fprintln(os.Stderr, "codabench: -trace: no selected figure records a span export (run -fig 12)")
			os.Exit(1)
		}
		if err := os.WriteFile(*traceOut, traceData, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
