// Command codabench regenerates the paper's tables and figures on the
// simulated substrate and prints them in the paper's layout.
//
// Usage:
//
//	codabench [-fig 1,4,7,8,9,10,11,12] [-ablations] [-quick] [-seed N] [-trials N] [-o out.txt]
//
// -fig selects figures (default all); Figure 12 includes Figures 13 and 14.
// -quick runs reduced workloads (for smoke testing); the full run matches
// the scales recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	figs := flag.String("fig", "1,4,7,8,9,10,11,12", "comma-separated figure numbers to run")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	quick := flag.Bool("quick", false, "reduced workloads")
	seed := flag.Int64("seed", 0, "random seed")
	trials := flag.Int("trials", 0, "trials per cell (0 = paper's default of 5)")
	out := flag.String("o", "", "also write output to this file")
	flag.Parse()

	opts := experiments.Options{Seed: *seed, Trials: *trials, Quick: *quick}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	selected := make(map[string]bool)
	for _, f := range strings.Split(*figs, ",") {
		selected[strings.TrimSpace(f)] = true
	}

	run := func(fig string, fn func() string) {
		if !selected[fig] {
			return
		}
		start := time.Now()
		fmt.Fprintf(w, "==== Figure %s ====\n", fig)
		fmt.Fprint(w, fn())
		fmt.Fprintf(w, "(completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	run("1", func() string { return experiments.Figure1(opts).Render() })
	run("4", func() string { return experiments.Figure4(opts).Render() })
	run("7", func() string { return experiments.Figure7(opts).Render() })
	run("8", func() string { return experiments.Figure8(opts).Render() })
	run("9", func() string { return experiments.Figure9(opts).Render() })
	run("10", func() string { return experiments.Figure10(opts).Render() })
	run("11", func() string { return experiments.Figure11(opts).Render() })
	run("12", func() string { return experiments.Figure12(opts).Render() })

	if *ablations {
		fmt.Fprintln(w, "==== Ablations ====")
		fmt.Fprint(w, experiments.AblationAging(opts).Render())
		fmt.Fprint(w, experiments.AblationLogOptimizations(opts).Render())
		fmt.Fprint(w, experiments.AblationChunkSize(opts).Render())
		fmt.Fprint(w, experiments.AblationVolumeCallbacks(opts).Render())
		fmt.Fprint(w, experiments.AblationAdaptiveRTO(opts).Render())
		fmt.Fprint(w, experiments.AblationDeltas(opts).Render())
	}
}
