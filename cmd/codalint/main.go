// Command codalint runs the repository's custom static-analysis suite:
// simclock (virtual-clock discipline), lockguard (mutex discipline),
// errwrap (error-wrapping discipline), testhygiene (test-helper and
// real-sleep checks), obsname (metric naming), and the interprocedural
// analyzers built on the shared effect engine — maporder
// (map-iteration-order determinism taint), lockhold (mutexes held
// across blocking calls), leakcheck (goroutine lifecycle), and
// allocscan (//codalint:hotpath functions must not allocate, directly
// or through any callee; pooled buffers exempt). See internal/lint for
// the analyzers and README.md for the allowlist and suppression
// policy.
//
// Flags: -json (machine-readable findings), -ignores (suppression
// audit — re-runs the suite and flags stale directives), -deadline DUR
// (wall-clock budget for CI).
//
// Exit status: 0 clean, 1 findings, 2 usage or load error, 3 deadline
// exceeded, 4 stale or malformed suppressions found by -ignores.
package main

import (
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
