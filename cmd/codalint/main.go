// Command codalint runs the repository's custom static-analysis suite:
// simclock (virtual-clock discipline), lockguard (mutex discipline),
// errwrap (error-wrapping discipline), and testhygiene (test-helper and
// real-sleep checks). See internal/lint for the analyzers and README.md
// for the allowlist and suppression policy.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
