// Command codalint runs the repository's custom static-analysis suite:
// simclock (virtual-clock discipline), lockguard (mutex discipline),
// errwrap (error-wrapping discipline), testhygiene (test-helper and
// real-sleep checks), obsname (metric naming), and the interprocedural
// trio — maporder (map-iteration-order determinism taint), lockhold
// (mutexes held across blocking calls), and leakcheck (goroutine
// lifecycle). See internal/lint for the analyzers and README.md for the
// allowlist and suppression policy.
//
// Flags: -json (machine-readable findings), -ignores (suppression
// audit), -deadline DUR (wall-clock budget for CI).
//
// Exit status: 0 clean, 1 findings, 2 usage or load error, 3 deadline
// exceeded.
package main

import (
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
