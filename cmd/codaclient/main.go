// Command codaclient is an interactive Venus client over real UDP.
//
// Usage:
//
//	codaclient -server host:8701 [-server host:8702 ...] [-mount usr] [-id 1]
//
// Repeating -server names the members of a replicated server group;
// calls fail over between them (give every client the same order).
//
// It exposes the file operations plus the weak-connectivity controls as a
// small shell, and implements the paper's two advice screens (Figures 5
// and 6) on the terminal: `misses` reviews deferred cache misses for
// addition to the hoard database, and during hoard walks the data-walk
// approval screen lists each candidate fetch with its priority and
// estimated cost.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/venus"
)

type serverList []string

func (s *serverList) String() string     { return fmt.Sprint(*s) }
func (s *serverList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var servers serverList
	flag.Var(&servers, "server", "server UDP address (repeat for a replicated group)")
	mount := flag.String("mount", "usr", "volume to mount at startup")
	id := flag.Uint("id", 1, "client id (unique per server)")
	stateFile := flag.String("state", "", "persist CML and hoard database to this file across restarts")
	metrics := flag.String("metrics", "", "serve Prometheus metrics on this HTTP address (e.g. :9702)")
	flag.Parse()
	if len(servers) == 0 {
		servers = serverList{"127.0.0.1:8701"}
	}

	conn, err := netsim.ListenUDP(":0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry(simtime.Real{})
	}
	v := venus.New(simtime.Real{}, conn, venus.Config{
		Servers:       servers,
		ClientID:      uint32(*id),
		ProbeInterval: 30 * time.Second,
		Advisor:       &terminalAdvisor{in: bufio.NewReader(os.Stdin)},
		Obs:           reg,
	})
	if *metrics != "" {
		go func() {
			if err := http.ListenAndServe(*metrics, obs.Handler(reg)); err != nil {
				fmt.Fprintln(os.Stderr, "metrics:", err)
			}
		}()
	}
	if err := v.Mount(*mount); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *stateFile != "" {
		if err := v.LoadStateFile(*stateFile); err != nil {
			fmt.Fprintln(os.Stderr, "restore state:", err)
		}
	}
	fmt.Printf("mounted /coda/%s from %s — type 'help'\n", *mount, strings.Join(servers, ","))

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("[%s] coda> ", v.State())
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		args := strings.Fields(line)
		if args[0] == "quit" || args[0] == "exit" {
			break
		}
		runCommand(v, args)
	}
	if *stateFile != "" {
		if err := v.SaveStateFile(*stateFile); err != nil {
			fmt.Fprintln(os.Stderr, "save state:", err)
		}
	}
	v.Close()
}

func runCommand(v *venus.Venus, args []string) {
	fail := func(err error) {
		if err != nil {
			fmt.Println("error:", err)
		}
	}
	switch args[0] {
	case "help":
		fmt.Print(`file ops:   ls PATH | cat PATH | write PATH TEXT... | mkdir PATH | rm PATH
            rmdir PATH | mv OLD NEW | ln TARGET PATH | readlink PATH | stat PATH
hoarding:   hoard PATH PRI [children] | unhoard PATH | hdb | walk | misses
network:    disconnect | connect [bps] | writedisc | force | forcetree PATH | bw
            cost PATIENCE_S_PER_MB AGING_MULT | probe
status:     state | cml | cache | conflicts | stats
`)
	case "ls":
		if len(args) < 2 {
			return
		}
		names, err := v.ReadDir(args[1])
		fail(err)
		for _, n := range names {
			fmt.Println(n)
		}
	case "cat":
		if len(args) < 2 {
			return
		}
		data, err := v.ReadFile(args[1])
		fail(err)
		_, _ = os.Stdout.Write(data)
		fmt.Println()
	case "write":
		if len(args) < 3 {
			return
		}
		fail(v.WriteFile(args[1], []byte(strings.Join(args[2:], " ")+"\n")))
	case "mkdir":
		if len(args) < 2 {
			return
		}
		fail(v.Mkdir(args[1]))
	case "rm":
		if len(args) < 2 {
			return
		}
		fail(v.Remove(args[1]))
	case "rmdir":
		if len(args) < 2 {
			return
		}
		fail(v.Rmdir(args[1]))
	case "mv":
		if len(args) < 3 {
			return
		}
		fail(v.Rename(args[1], args[2]))
	case "ln":
		if len(args) < 3 {
			return
		}
		fail(v.Link(args[1], args[2]))
	case "readlink":
		if len(args) < 2 {
			return
		}
		target, err := v.ReadLink(args[1])
		fail(err)
		fmt.Println(target)
	case "stat":
		if len(args) < 2 {
			return
		}
		st, err := v.Stat(args[1])
		fail(err)
		if err == nil {
			fmt.Printf("%s %s %d bytes v%d mode %o links %d\n",
				st.FID, st.Type, st.Length, st.Version, st.Mode, st.Links)
		}
	case "hoard":
		if len(args) < 3 {
			return
		}
		pri, _ := strconv.Atoi(args[2])
		children := len(args) > 3 && args[3] == "children"
		v.HoardAdd(args[1], pri, children)
		fmt.Println("added (fetch deferred to next hoard walk)")
	case "unhoard":
		if len(args) < 2 {
			return
		}
		v.HoardRemove(args[1])
	case "hdb":
		for _, e := range v.HoardList() {
			kids := ""
			if e.Children {
				kids = " +children"
			}
			fmt.Printf("%5d  %s%s\n", e.Priority, e.Path, kids)
		}
	case "walk":
		fail(v.HoardWalk())
	case "misses":
		showMisses(v)
	case "disconnect":
		v.Disconnect()
	case "connect":
		var bw int64
		if len(args) > 1 {
			n, _ := strconv.ParseInt(args[1], 10, 64)
			bw = n
		}
		v.Connect(bw)
	case "writedisc":
		v.WriteDisconnect()
	case "force":
		fail(v.ForceReintegrate())
	case "forcetree":
		if len(args) < 2 {
			return
		}
		fail(v.ForceReintegrateSubtree(args[1]))
	case "cost":
		if len(args) < 3 {
			return
		}
		perMB, _ := strconv.ParseFloat(args[1], 64)
		mult, _ := strconv.ParseFloat(args[2], 64)
		v.SetNetworkCost(venus.NetworkCost{PatienceSecondsPerMB: perMB, AgingMultiplier: mult})
		fmt.Printf("network cost: %.0f patience-s/MB, aging x%.1f\n", perMB, mult)
	case "probe":
		if err := v.Probe(); err != nil {
			fmt.Println("server unreachable:", err)
		} else {
			fmt.Println("server reachable")
		}
	case "bw":
		fmt.Printf("estimated bandwidth: %d b/s\n", v.LinkBandwidth())
	case "state":
		fmt.Println(v.State())
	case "cache":
		cs := v.CacheStats()
		fmt.Printf("Cache Space (KB): Allocated = %d  Occupied = %d  Available = %d  (%d objects)\n",
			cs.AllocatedBytes/1024, cs.OccupiedBytes/1024, cs.Available()/1024, cs.Objects)
	case "cml":
		fmt.Printf("%d records, %d bytes awaiting reintegration; %d bytes saved by optimizations\n",
			v.CMLRecords(), v.CMLBytes(), v.OptimizedBytes())
	case "conflicts":
		for _, c := range v.Conflicts() {
			fmt.Printf("%s %s %s %s: %s\n", c.Time.Format("15:04:05"), c.Volume, c.Kind, c.Path, c.Msg)
		}
	case "stats":
		st := v.Stats()
		fmt.Printf("validations: %d (%d ok, %d objs saved, %d missing stamps, %d object validations)\n",
			st.VolValidations, st.VolValidationsOK, st.ObjsSavedByVolume, st.MissingStamp, st.ObjValidations)
		fmt.Printf("misses: %d transparent, %d deferred, %d disconnected\n",
			st.TransparentFetches, st.DeferredMisses, st.DisconnectedMisses)
		fmt.Printf("reintegration: %d chunks, %d records, %d KB shipped, %d failures\n",
			st.Reintegrations, st.ShippedRecords, st.ShippedBytes/1024, st.ReintegrationFailures)
	default:
		fmt.Println("unknown command; try 'help'")
	}
}

// showMisses is the Figure 5 screen: each deferred miss with its context,
// and the option to add it to the HDB.
func showMisses(v *venus.Venus) {
	misses := v.Misses()
	if len(misses) == 0 {
		fmt.Println("no misses recorded")
		return
	}
	fmt.Println("File/Directory                                     Program    Add to HDB?")
	in := bufio.NewReader(os.Stdin)
	for _, m := range misses {
		fmt.Printf("%-50s %-10s [y/N priority?] ", m.Path, m.Program)
		line, _ := in.ReadString('\n')
		line = strings.TrimSpace(line)
		if line == "" || line == "n" || line == "N" {
			continue
		}
		pri := 600
		fields := strings.Fields(line)
		if len(fields) > 1 {
			if p, err := strconv.Atoi(fields[1]); err == nil {
				pri = p
			}
		}
		v.HoardAdd(m.Path, pri, false)
		fmt.Printf("  hoarded at priority %d (fetch at next walk)\n", pri)
	}
}

// terminalAdvisor is the Figure 6 screen: before the data walk, the user
// can suppress fetches whose cost exceeds their worth.
type terminalAdvisor struct{ in *bufio.Reader }

func (a *terminalAdvisor) ApproveDataWalk(items []venus.WalkItem) []bool {
	fmt.Println("\n--- data walk approval (enter = fetch all, or list indexes to SKIP) ---")
	fmt.Println("  #  Pri    Cost      Size      Object")
	out := make([]bool, len(items))
	for i, it := range items {
		tag := " "
		if it.PreApproved {
			tag = "*" // pre-approved by the patience model
		}
		fmt.Printf("%s%2d  %4d  %7.1fs  %8d  %s\n", tag, i, it.Priority, it.Cost.Seconds(), it.Size, it.Path)
		out[i] = true
	}
	line, _ := a.in.ReadString('\n')
	for _, f := range strings.Fields(line) {
		if idx, err := strconv.Atoi(f); err == nil && idx >= 0 && idx < len(out) {
			out[idx] = false
		}
	}
	return out
}
