// Command benchgate diffs the current benchmark sweep against the
// committed bench_baseline.json and fails CI when a gated number
// regresses: AllocsPerOp strictly (the counts are deterministic at a
// fixed iteration count), B/op and the codabench figure series with
// threshold_pct of headroom. See internal/benchgate for the rules and
// `make bench-gate` / `make bench-baseline` for the workflow.
package main

import (
	"os"

	"repro/internal/benchgate"
)

func main() {
	os.Exit(benchgate.Main(os.Args[1:], os.Stdout, os.Stderr))
}
