// Command codascn runs declarative scenario files (internal/scenario):
// experiment topologies, fault schedules, and assertions executed
// deterministically on the simulated substrate.
//
// Usage:
//
//	codascn run [-json] [-trace out.json] file.scn...
//	                                     execute scenarios, report pass/fail;
//	                                     -trace writes the Perfetto span export
//	                                     (exactly one scenario)
//	codascn validate file.scn...         parse + validate (templates: expand and validate every cell)
//	codascn list file.scn|dir...         one line per scenario: name, kind, doc
//	codascn matrix [-out dir] [-run] [-json] template.scn
//	                                     expand a template's axes; -out writes
//	                                     instance files, -run executes them
//
// Exit status: 0 ok, 1 scenario failure (a step failed or an assertion
// did not hold), 2 usage, load, or validation error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:])
	case "validate":
		return cmdValidate(args[1:])
	case "list":
		return cmdList(args[1:])
	case "matrix":
		return cmdMatrix(args[1:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	}
	fmt.Fprintf(os.Stderr, "codascn: unknown command %q\n", args[0])
	usage()
	return 2
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  codascn run [-json] [-trace out.json] file.scn...
  codascn validate file.scn...
  codascn list file.scn|dir...
  codascn matrix [-out dir] [-run] [-json] template.scn
`)
}

// load reads and parses one scenario file.
func load(path string) (*scenario.Scenario, []byte, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	name := strings.TrimSuffix(filepath.Base(path), ".scn")
	s, err := scenario.Parse(name, src)
	if err != nil {
		return nil, nil, err
	}
	return s, src, nil
}

// expand turns file arguments into a flat .scn list, walking directories.
func expand(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			out = append(out, a)
			continue
		}
		ents, err := os.ReadDir(a)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".scn") {
				out = append(out, filepath.Join(a, e.Name()))
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "print each result as its full JSON dump")
	traceOut := fs.String("trace", "", "write the run's Perfetto (Chrome trace-event) span export to this file; requires exactly one scenario")
	if fs.Parse(args) != nil || fs.NArg() == 0 {
		usage()
		return 2
	}
	files, err := expand(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "codascn:", err)
		return 2
	}
	if *traceOut != "" && len(files) != 1 {
		fmt.Fprintf(os.Stderr, "codascn: -trace needs exactly one scenario, got %d\n", len(files))
		return 2
	}
	code := 0
	for _, path := range files {
		s, _, err := load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "codascn:", err)
			return 2
		}
		if s.IsTemplate() {
			fmt.Fprintf(os.Stderr, "codascn: %s is a template; use: codascn matrix -run %s\n", path, path)
			return 2
		}
		res, err := scenario.Run(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "codascn:", err)
			return 2
		}
		if *jsonOut {
			_, _ = os.Stdout.Write(res.DumpJSON())
		}
		if *traceOut != "" {
			if err := os.WriteFile(*traceOut, res.Trace, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "codascn:", err)
				return 2
			}
		}
		code = report(res, code)
	}
	return code
}

// report prints one result line (plus failures) and folds the exit code.
func report(res *scenario.Result, code int) int {
	if res.OK() {
		fmt.Printf("PASS %s (%d steps, %d asserts, %s sim)\n",
			res.Scenario, res.Steps, len(res.Asserts), simDur(res.ElapsedSimUS))
		return code
	}
	fmt.Printf("FAIL %s\n", res.Scenario)
	for _, f := range res.Failures() {
		fmt.Printf("     %s\n", f)
	}
	if code == 0 {
		code = 1
	}
	return code
}

// simDur renders elapsed sim microseconds compactly.
func simDur(us int64) string {
	switch {
	case us >= 60_000_000:
		return fmt.Sprintf("%dm%ds", us/60_000_000, us%60_000_000/1_000_000)
	case us >= 1_000_000:
		return fmt.Sprintf("%ds", us/1_000_000)
	default:
		return fmt.Sprintf("%dms", us/1_000)
	}
}

func cmdValidate(args []string) int {
	files, err := expand(args)
	if err != nil || len(files) == 0 {
		if err != nil {
			fmt.Fprintln(os.Stderr, "codascn:", err)
		} else {
			usage()
		}
		return 2
	}
	for _, path := range files {
		s, src, err := load(path)
		if err == nil {
			err = scenario.Validate(s)
		}
		if err == nil && s.IsTemplate() {
			// A template is only as valid as its cells.
			_, err = scenario.ExpandMatrix(s.Name, src)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "codascn:", err)
			return 2
		}
		fmt.Printf("OK   %s\n", path)
	}
	return 0
}

func cmdList(args []string) int {
	files, err := expand(args)
	if err != nil || len(files) == 0 {
		if err != nil {
			fmt.Fprintln(os.Stderr, "codascn:", err)
		} else {
			usage()
		}
		return 2
	}
	for _, path := range files {
		s, _, err := load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "codascn:", err)
			return 2
		}
		kind := "scenario"
		if s.IsTemplate() {
			cells := 1
			var axes []string
			for _, ax := range s.Axes {
				cells *= len(ax.Values)
				axes = append(axes, fmt.Sprintf("%s(%d)", ax.Name, len(ax.Values)))
			}
			kind = fmt.Sprintf("template %s = %d cells", strings.Join(axes, " x "), cells)
		}
		doc := ""
		if len(s.Doc) > 0 {
			doc = "  " + s.Doc[0]
		}
		fmt.Printf("%-28s %s%s\n", s.Name, kind, doc)
	}
	return 0
}

func cmdMatrix(args []string) int {
	fs := flag.NewFlagSet("matrix", flag.ContinueOnError)
	outDir := fs.String("out", "", "write expanded instance .scn files to this directory")
	doRun := fs.Bool("run", false, "execute every instance")
	jsonOut := fs.Bool("json", false, "with -run, print each result's JSON dump")
	if fs.Parse(args) != nil || fs.NArg() != 1 {
		usage()
		return 2
	}
	path := fs.Arg(0)
	s, src, err := load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codascn:", err)
		return 2
	}
	insts, err := scenario.ExpandMatrix(s.Name, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codascn:", err)
		return 2
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "codascn:", err)
			return 2
		}
		for _, inst := range insts {
			p := filepath.Join(*outDir, inst.Name+".scn")
			if err := os.WriteFile(p, inst.Src, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "codascn:", err)
				return 2
			}
		}
		fmt.Printf("wrote %d instances to %s\n", len(insts), *outDir)
	}
	code := 0
	for _, inst := range insts {
		if !*doRun {
			fmt.Println(inst.Name)
			continue
		}
		res, err := scenario.Run(inst.Scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, "codascn:", err)
			return 2
		}
		if *jsonOut {
			_, _ = os.Stdout.Write(res.DumpJSON())
		}
		code = report(res, code)
	}
	return code
}
