// Command codasrv runs a Coda file server over real UDP.
//
// Usage:
//
//	codasrv [-listen :8701] [-vol usr -vol proj ...] [-seed-files N]
//	        [-peer host:8702 -peer host:8703 ...]
//
// The server exports the named volumes (default "usr"), optionally
// pre-populated with N small files each, and serves codaclient instances
// until interrupted. With -peer flags it runs as one member of a
// replicated group: committed updates are shipped to the peers, and at
// boot the server pulls any log suffix it missed while down from the
// first reachable peer.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/simtime"
)

type volList []string

func (v *volList) String() string     { return fmt.Sprint(*v) }
func (v *volList) Set(s string) error { *v = append(*v, s); return nil }

func main() {
	listen := flag.String("listen", ":8701", "UDP address to listen on")
	seedFiles := flag.Int("seed-files", 0, "pre-populate each volume with N files")
	stateFile := flag.String("state", "", "persist volumes to this file (load at boot, save at shutdown)")
	metrics := flag.String("metrics", "", "serve Prometheus metrics on this HTTP address (e.g. :9701)")
	var vols volList
	flag.Var(&vols, "vol", "volume to export (repeatable; default usr)")
	var peers volList
	flag.Var(&peers, "peer", "replica group peer address (repeatable)")
	flag.Parse()
	if len(vols) == 0 {
		vols = volList{"usr"}
	}

	conn, err := netsim.ListenUDP(*listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry(simtime.Real{})
	}
	srv := server.New(simtime.Real{}, conn, server.WithObs(reg), server.WithPeers(peers...))
	if *metrics != "" {
		go func() {
			log.Printf("metrics on http://%s/metrics", *metrics)
			if err := http.ListenAndServe(*metrics, obs.Handler(reg)); err != nil {
				log.Printf("metrics: %v", err)
			}
		}()
	}
	if *stateFile != "" {
		if err := srv.LoadStateFile(*stateFile); err != nil {
			log.Fatalf("load state: %v", err)
		}
	}
	for _, vol := range vols {
		if _, err := srv.CreateVolume(vol); err != nil {
			log.Printf("volume %s: %v (continuing)", vol, err)
			continue
		}
		for i := 0; i < *seedFiles; i++ {
			rel := fmt.Sprintf("seed/file%03d.txt", i)
			data := []byte(fmt.Sprintf("seed file %d of volume %s\n", i, vol))
			if _, err := srv.WriteFile(vol, rel, data); err != nil {
				log.Fatalf("seed %s/%s: %v", vol, rel, err)
			}
		}
		log.Printf("exporting volume %q", vol)
	}
	// Rejoin the group: pull whatever suffix the peers committed while
	// this member was down. Unreachable peers are not fatal — catch-up
	// also happens lazily when the first gap is detected.
	for _, p := range peers {
		if err := srv.CatchUp(p); err != nil {
			log.Printf("catch-up from %s: %v", p, err)
			continue
		}
		log.Printf("caught up from %s", p)
		break
	}
	log.Printf("codasrv listening on %s", conn.LocalAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	st := srv.Stats()
	log.Printf("shutting down: %d calls, %d reintegrations (%d failed), %d records applied, %d conflicts, %d breaks sent",
		st.Calls, st.Reintegrations, st.ReintegrationFails, st.RecordsApplied, st.Conflicts, st.BreaksSent)
	if *stateFile != "" {
		if err := srv.SaveStateFile(*stateFile); err != nil {
			log.Printf("save state: %v", err)
		} else {
			log.Printf("state saved to %s", *stateFile)
		}
	}
	srv.Close()
}
