// Command tracegen generates synthetic file-reference traces, reports
// their statistics (the Figure 11 columns), optionally writes them as gob
// files, and can replay a trace against a simulated client/server world at
// a chosen network speed (§6.2.1's methodology as a standalone tool).
//
// Usage:
//
//	tracegen -preset Purcell|Holst|Messiaen|Concord|ives|... [-seed N] [-o trace.gob]
//	tracegen -updates 500 -refs 60 -rewrite 2.5 -writekb 10 -duration 45m
//	tracegen -replay trace.gob -network modem -lambda 1s -agingwindow 600s
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/codafs"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/venus"
)

func main() {
	preset := flag.String("preset", "", "named preset (segment: Purcell/Holst/Messiaen/Concord; week: ives/concord/holst/messiaen/purcell)")
	seed := flag.Int64("seed", 0, "generator seed")
	out := flag.String("o", "", "write the trace (gob) to this file")
	updates := flag.Int("updates", 500, "target update count (custom mode)")
	refs := flag.Int("refs", 60, "references per update (custom mode)")
	rewrite := flag.Float64("rewrite", 1.5, "mean rewrites per episode (custom mode)")
	writeKB := flag.Float64("writekb", 8, "mean store size in KB (custom mode)")
	duration := flag.Duration("duration", 45*time.Minute, "trace span (custom mode)")
	aging := flag.Duration("aging", -1, "also analyze with this aging window (e.g. 600s)")
	replayFile := flag.String("replay", "", "replay this trace file against a simulated world")
	network := flag.String("network", "ethernet", "network for -replay: ethernet|wavelan|isdn|modem")
	lambda := flag.Duration("lambda", time.Second, "think threshold λ for -replay")
	agingWindow := flag.Duration("agingwindow", 600*time.Second, "aging window A for -replay")
	flag.Parse()

	if *replayFile != "" {
		if err := replayTrace(*replayFile, *network, *lambda, *agingWindow); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var p trace.GenParams
	switch *preset {
	case "":
		p = trace.GenParams{
			Name: "custom", Seed: *seed, Duration: *duration,
			Updates: *updates, RefsPerUpdate: *refs,
			RewriteMean: *rewrite, MeanWriteKB: *writeKB,
		}
	case "Purcell", "Holst", "Messiaen", "Concord":
		p = trace.SegmentPreset(*preset, *seed)
	case "ives", "concord", "holst", "messiaen", "purcell":
		p = trace.WeekPreset(*preset, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown preset %q\n", *preset)
		os.Exit(1)
	}

	tr := trace.Generate(p)
	nrefs, nupdates := tr.Counts()
	an := trace.AnalyzeCML(tr, trace.NoAging)
	fmt.Printf("trace %q: %d records over %v\n", tr.Name, len(tr.Records), tr.Duration().Round(time.Second))
	fmt.Printf("  references:      %d\n", nrefs)
	fmt.Printf("  updates:         %d\n", nupdates)
	fmt.Printf("  unopt. CML:      %d KB\n", an.AppendedBytes/1024)
	fmt.Printf("  opt. CML:        %d KB\n", (an.AppendedBytes-an.SavedBytes)/1024)
	fmt.Printf("  compressibility: %.0f%%\n", an.Compressibility()*100)
	if *aging >= 0 {
		aw := trace.AnalyzeCML(tr, *aging)
		fmt.Printf("  with A=%v: saved %d KB (%.0f%% of no-aging savings)\n",
			*aging, aw.SavedBytes/1024, 100*float64(aw.SavedBytes)/float64(an.SavedBytes))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := gob.NewEncoder(f).Encode(tr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// replayTrace loads a gob trace and replays it on a write-disconnected
// simulated client at the named network speed, reporting elapsed time and
// CML statistics — one cell of Figure 12, from the command line.
func replayTrace(path, network string, lambda, aging time.Duration) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var tr trace.Trace
	if err := gob.NewDecoder(f).Decode(&tr); err != nil {
		return fmt.Errorf("decode trace: %w", err)
	}

	var prof netsim.Profile
	switch strings.ToLower(network) {
	case "ethernet", "e":
		prof = netsim.Ethernet
	case "wavelan", "w":
		prof = netsim.WaveLan
	case "isdn", "i":
		prof = netsim.ISDN
	case "modem", "m":
		prof = netsim.Modem
	default:
		return fmt.Errorf("unknown network %q", network)
	}

	sim := simtime.NewSim(simtime.Epoch1995)
	net := netsim.New(sim, 1)
	net.SetDefaults(netsim.Ethernet.Params())
	srv := server.New(sim, net.Host("server"))
	if err := trace.SeedServer(srv, &tr); err != nil {
		return err
	}
	var stats trace.ReplayStats
	var begin, end, optimized, shipped int64
	sim.Run(func() {
		v := venus.New(sim, net.Host("client"), venus.Config{
			Server:               "server",
			ClientID:             1,
			CacheBytes:           1 << 30,
			AgingWindow:          aging,
			PinWriteDisconnected: true,
		})
		if err := v.Mount(tr.Volume); err != nil {
			panic(err)
		}
		v.HoardAdd(codafs.JoinPath(tr.Volume), 600, true)
		if err := v.HoardWalk(); err != nil {
			panic(err)
		}
		v.WriteDisconnect()
		net.SetLink("client", "server", prof.Params())
		v.Connect(prof.Bandwidth)

		begin = v.CMLBytes()
		stats = trace.Replay(sim, v, &tr, trace.ReplayOpts{Lambda: lambda, OpCost: 3 * time.Millisecond})
		end = v.CMLBytes()
		optimized = v.OptimizedBytes()
		shipped = v.Stats().ShippedBytes
	})

	fmt.Printf("replayed %q on %s (λ=%v, A=%v)\n", tr.Name, prof.Name, lambda, aging)
	fmt.Printf("  elapsed:    %v (%d ops, %d updates, %d misses, %d errors)\n",
		stats.Elapsed.Round(time.Second), stats.Ops, stats.Updates, stats.CacheMisses, stats.Errors)
	fmt.Printf("  CML:        begin %d KB, end %d KB\n", begin/1024, end/1024)
	fmt.Printf("  shipped:    %d KB\n", shipped/1024)
	fmt.Printf("  optimized:  %d KB\n", optimized/1024)
	return nil
}
